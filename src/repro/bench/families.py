"""Parameterized topology families: grid/chain/ring/star/htree/soc dies.

The ITC'99-calibrated generator (:mod:`repro.bench.generator`) produces
one topology shape. This module adds *families*: the die is still a set
of layered-DAG clusters, but the inter-cluster wiring follows an
explicit topology with a closed-form edge set — a 2-D mesh, a pipeline
chain, a token ring, a hub-and-spoke star, a balanced H-tree, or a
mixed "soc" blend (a star of heterogeneous blocks). Any instance is
reproducible from ``(family, spec, seed)``.

Structural contract (pinned by ``tests/test_families.py``):

* cluster counts and inter-cluster edges match the family's closed
  form (:func:`plan_family`);
* cross-cluster wires run **only** along topology edges and tap foreign
  level-0 sources only, so combinational logic stays acyclic and fan-in
  cones stay modular;
* every topology edge is realized by at least one wire (clusters keep a
  queue of unbridged incident edges and burn one input slot per gate on
  them until the queue drains);
* gate/FF/TSV counts equal the spec exactly; levels are hard-bounded by
  ``max_depth``; inbound-TSV fanout never exceeds ``hub_fanout``.

Scalability: unlike the ITC generator there is no 128-bit signature
redundancy filter — at the 10^6-gate end of ``repro scale`` the filter
would dominate generation time, and the scaling/differential workloads
care about structure and determinism, not ATPG-quality logic.

Fan-out statistics are Rent-style configurable: with ``rent_exponent``
set, the per-slot cross-cluster tap probability is derived from
``T = t * G^p`` (Rent's rule, G = gates per cluster), so bigger
clusters expose proportionally fewer external pins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bench.generator import _GATE_MIX, _ClusterPool
from repro.netlist.builder import NetlistBuilder
from repro.netlist.core import Netlist, PortKind
from repro.netlist.library import Library
from repro.util.errors import ReproError
from repro.util.rng import DeterministicRng

#: the supported family names, in canonical order
FAMILIES: Tuple[str, ...] = ("grid", "chain", "ring", "star", "htree",
                             "soc")

#: std-cell mix presets: (cell, weight, #data inputs) distributions.
#: "balanced" is the ITC'99-calibrated histogram; the others skew the
#: distribution the way synthesis constraints do (area-driven NAND
#: mapping, datapath XOR logic, control-heavy MUX/AOI logic).
CELL_MIXES: Dict[str, Tuple[Tuple[str, float, int], ...]] = {
    "balanced": _GATE_MIX,
    "nand": (
        ("NAND2_X1", 40.0, 2), ("NAND3_X1", 14.0, 3),
        ("NOR2_X1", 16.0, 2), ("INV_X1", 20.0, 1),
        ("AOI21_X1", 5.0, 3), ("OAI21_X1", 5.0, 3),
    ),
    "xor": (
        ("XOR2_X1", 24.0, 2), ("XNOR2_X1", 12.0, 2),
        ("NAND2_X1", 16.0, 2), ("AND2_X1", 10.0, 2),
        ("OR2_X1", 10.0, 2), ("INV_X1", 12.0, 1),
        ("MUX2_X1", 8.0, 3), ("NOR2_X1", 8.0, 2),
    ),
    "mux": (
        ("MUX2_X1", 26.0, 3), ("AOI21_X1", 14.0, 3),
        ("OAI21_X1", 14.0, 3), ("NAND2_X1", 14.0, 2),
        ("NOR2_X1", 10.0, 2), ("INV_X1", 14.0, 1),
        ("BUF_X1", 8.0, 1),
    ),
}


@dataclass(frozen=True)
class FamilySpec:
    """Size and shape knobs of one family instance (exact counts)."""

    gates: int = 1200
    ffs: int = 72
    tsv_in: int = 24
    tsv_out: int = 24
    primary_inputs: int = 4
    primary_outputs: int = 2
    #: std-cell mix preset name (see :data:`CELL_MIXES`)
    cell_mix: str = "balanced"
    #: target gates per cluster (modularity grain)
    cluster_gates: int = 24
    #: hard bound on combinational depth
    max_depth: int = 12
    #: fan-out caps: ordinary nets, designated hubs, non-hub inbound TSVs
    max_fanout: int = 8
    hub_fanout: int = 16
    tsv_max_fanout: int = 4
    #: fraction of gates promoted to high-fanout hubs
    hub_fraction: float = 0.01
    #: fraction of inbound TSVs promoted to hubs (exceed ``cap_th``)
    hub_tsv_fraction: float = 0.03
    #: per-slot probability of a cross-cluster tap along a topology edge
    p_cross: float = 0.12
    #: base probability of drawing from the unused-signal queue
    p_unused: float = 0.50
    #: probability of drawing a designated hub signal
    p_hub: float = 0.02
    #: Rent's-rule exponent: when set, overrides ``p_cross`` with
    #: ``min(0.5, rent_t * G**(rent_exponent - 1))`` for G gates/cluster
    rent_exponent: Optional[float] = None
    rent_t: float = 2.5

    def __post_init__(self) -> None:
        if self.gates < 1:
            raise ReproError(f"family spec needs >= 1 gate, got "
                             f"{self.gates}")
        if self.ffs < 1:
            raise ReproError(f"family spec needs >= 1 FF, got {self.ffs}")
        if self.tsv_in < 0 or self.tsv_out < 0:
            raise ReproError("family spec TSV counts must be >= 0")
        if self.cell_mix not in CELL_MIXES:
            raise ReproError(f"unknown cell mix {self.cell_mix!r} "
                             f"(have {sorted(CELL_MIXES)})")
        if self.max_fanout < 2 or self.hub_fanout < self.max_fanout:
            raise ReproError("need max_fanout >= 2 and hub_fanout >= "
                             "max_fanout")

    @classmethod
    def from_density(cls, gates: int, ffs_per_kgate: float = 60.0,
                     tsvs_per_kgate: float = 40.0,
                     tsv_in_fraction: float = 0.5,
                     **overrides) -> "FamilySpec":
        """Derive exact counts from per-kilogate densities.

        Rounding keeps the realized density within one count of the
        request (pinned by the property suite).
        """
        ffs = max(1, round(gates * ffs_per_kgate / 1000.0))
        tsvs = max(0, round(gates * tsvs_per_kgate / 1000.0))
        tsv_in = round(tsvs * tsv_in_fraction)
        return cls(gates=gates, ffs=ffs, tsv_in=tsv_in,
                   tsv_out=tsvs - tsv_in, **overrides)

    def cross_probability(self, cluster_gates: int) -> float:
        if self.rent_exponent is None:
            return self.p_cross
        g = max(1, cluster_gates)
        return min(0.5, self.rent_t * g ** (self.rent_exponent - 1.0))


@dataclass(frozen=True)
class FamilyPlan:
    """Closed-form cluster topology of one family instance."""

    family: str
    clusters: int
    #: inter-cluster edges, each ``(a, b)`` with ``a < b``, sorted
    edges: Tuple[Tuple[int, int], ...]
    #: family-specific dimensions (rows/cols, depth, block sizes)
    shape: Tuple[Tuple[str, int], ...] = ()

    def neighbors(self) -> List[List[int]]:
        out: List[List[int]] = [[] for _ in range(self.clusters)]
        for a, b in self.edges:
            out[a].append(b)
            out[b].append(a)
        return [sorted(n) for n in out]


def plan_family(family: str, clusters: int) -> FamilyPlan:
    """The topology of *family* over at most *clusters* clusters.

    Families with rigid shapes (grid, htree) round *down* to the
    nearest realizable count, so the result never exceeds the request —
    callers size the request by available level-0 sources.
    """
    clusters = max(1, clusters)
    if family == "grid":
        rows = max(1, math.isqrt(clusters))
        cols = max(1, clusters // rows)
        n = rows * cols
        edges = sorted(
            [(r * cols + c, r * cols + c + 1)
             for r in range(rows) for c in range(cols - 1)]
            + [(r * cols + c, (r + 1) * cols + c)
               for r in range(rows - 1) for c in range(cols)])
        return FamilyPlan("grid", n, tuple(edges),
                          (("cols", cols), ("rows", rows)))
    if family == "chain":
        edges = tuple((i, i + 1) for i in range(clusters - 1))
        return FamilyPlan("chain", clusters, edges,
                          (("length", clusters),))
    if family == "ring":
        if clusters < 3:
            # Degenerate ring: two clusters collapse onto a single
            # chain edge (one collapses to an isolated cluster).
            edges = ((0, 1),) if clusters == 2 else ()
            return FamilyPlan("ring", clusters, edges,
                              (("size", clusters),))
        edges = tuple(sorted([(i, i + 1) for i in range(clusters - 1)]
                             + [(0, clusters - 1)]))
        return FamilyPlan("ring", clusters, edges,
                          (("size", clusters),))
    if family == "star":
        edges = tuple((0, i) for i in range(1, clusters))
        return FamilyPlan("star", clusters, edges,
                          (("leaves", clusters - 1),))
    if family == "htree":
        depth = 0
        while 2 ** (depth + 2) - 1 <= clusters:
            depth += 1
        n = 2 ** (depth + 1) - 1
        edges = tuple(sorted(
            (i, child) for i in range(n)
            for child in (2 * i + 1, 2 * i + 2) if child < n))
        return FamilyPlan("htree", n, edges, (("depth", depth),))
    if family == "soc":
        # A hub cluster (interconnect fabric) fronting three
        # heterogeneous blocks: a grid (compute array), a chain
        # (pipeline) and a ring (token bus), split as evenly as the
        # budget allows.
        rest = clusters - 1
        base, extra = divmod(rest, 3)
        sizes = [base + (1 if i < extra else 0) for i in range(3)]
        edges: List[Tuple[int, int]] = []
        shape: List[Tuple[str, int]] = []
        offset = 1
        for block_family, size in zip(("grid", "chain", "ring"), sizes):
            if size <= 0:
                shape.append((block_family, 0))
                continue
            sub = plan_family(block_family, size)
            edges.extend((a + offset, b + offset) for a, b in sub.edges)
            edges.append((0, offset))
            shape.append((block_family, sub.clusters))
            offset += sub.clusters
        return FamilyPlan("soc", offset, tuple(sorted(edges)),
                          tuple(shape))
    raise ReproError(f"unknown family {family!r} (have {FAMILIES})")


@dataclass
class FamilyInstance:
    """A generated family die plus the structure it was built from."""

    family: str
    spec: FamilySpec
    seed: int
    netlist: Netlist
    plan: FamilyPlan
    #: net name -> owning cluster (sources and gate outputs)
    cluster_of_net: Dict[str, int] = field(default_factory=dict)
    #: instance name -> owning cluster (gates and FFs)
    cluster_of_instance: Dict[str, int] = field(default_factory=dict)
    #: net name -> assigned level (0 = sources)
    levels: Dict[str, int] = field(default_factory=dict)

    def realized_edges(self) -> Set[Tuple[int, int]]:
        """Inter-cluster edges actually carrying at least one wire."""
        out: Set[Tuple[int, int]] = set()
        for net in self.netlist.nets.values():
            src = self.cluster_of_net.get(net.name)
            if src is None:
                continue  # clock / scan-stitch nets
            for sink in net.sinks:
                if sink.is_port:
                    continue
                dst = self.cluster_of_instance.get(sink.owner_name)
                if dst is not None and dst != src:
                    out.add((min(src, dst), max(src, dst)))
        return out


def netlist_fingerprint(netlist: Netlist) -> str:
    """Content fingerprint over the full structural payload — the
    byte-identity surface for family determinism (same payload the ECO
    session and job server fingerprint)."""
    from repro.core.session import netlist_payload
    from repro.util.fingerprint import fingerprint

    return fingerprint(netlist_payload(netlist))


class _FamilyGenerator:
    """Layered-cluster generation over an explicit topology plan."""

    def __init__(self, family: str, spec: FamilySpec, seed: int,
                 library: Optional[Library], name: Optional[str]) -> None:
        # Clamp by *non-TSV* sources: every cluster must own at least
        # one PI or FF-Q signal, so no fallback path is ever forced
        # onto an over-cap TSV net (the TSV fan-out caps stay hard).
        non_tsv_sources = spec.primary_inputs + spec.ffs
        requested = max(1, min(1024,
                               round(spec.gates / spec.cluster_gates) or 1,
                               non_tsv_sources))
        self.plan = plan_family(family, requested)
        self.family = family
        self.spec = spec
        self.seed = seed
        self.rng = DeterministicRng(seed).child("family", family)
        self.builder = NetlistBuilder(
            name or f"{family}_g{spec.gates}_s{seed}", library)
        n = self.plan.clusters
        self.neighbors = self.plan.neighbors()
        self.pools = [_ClusterPool(spec.max_depth) for _ in range(n)]
        self.use_counts: Dict[str, int] = {}
        self.unused_set: set = set()
        self.hub_set: set = set()
        self.tsv_set: set = set()
        self.hubs_by_cluster: List[List[str]] = [[] for _ in range(n)]
        self.cluster_of_net: Dict[str, int] = {}
        self.cluster_of_instance: Dict[str, int] = {}
        self.remaining_slots = 0
        self.clock_net = ""
        self.ff_q_nets: List[str] = []
        #: unbridged incident topology edges, per cluster
        self.pending_edges: List[List[Tuple[int, int]]] = [
            sorted((min(c, o), max(c, o)) for o in self.neighbors[c])
            for c in range(n)]
        self.bridged: Set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------
    def run(self) -> FamilyInstance:
        self._deal_sources()
        self._create_sources()
        self._create_clouds()
        self._create_sinks()
        levels = {}
        for pool in self.pools:
            levels.update(pool.levels)
        return FamilyInstance(
            family=self.family, spec=self.spec, seed=self.seed,
            netlist=self.builder.finish(), plan=self.plan,
            cluster_of_net=self.cluster_of_net,
            cluster_of_instance=self.cluster_of_instance,
            levels=levels)

    # ------------------------------------------------------------------
    def _deal_sources(self) -> None:
        spec, n = self.spec, self.plan.clusters

        def split(total: int) -> List[int]:
            base, extra = divmod(total, n)
            return [base + (1 if i < extra else 0) for i in range(n)]

        # Two-phase shuffled round-robin deal: PIs and FFs first (the
        # cluster count is clamped so every cluster lands at least one
        # of these non-TSV sources), TSVs separately from a seeded
        # offset. A cluster whose only level-0 source is a TSV would
        # force fallback picks past the TSV fan-out caps.
        tags = ["pi"] * spec.primary_inputs + ["ff"] * spec.ffs
        self.rng.child("source_deal").shuffle(tags)
        per = {"pi": [0] * n, "tsvin": [0] * n, "ff": [0] * n}
        for index, tag in enumerate(tags):
            per[tag][index % n] += 1
        offset = self.rng.child("tsv_deal").randint(0, n - 1) if n > 1 \
            else 0
        for index in range(spec.tsv_in):
            per["tsvin"][(offset + index) % n] += 1
        self.pis_per_cluster = per["pi"]
        self.tsvin_per_cluster = per["tsvin"]
        self.ffs_per_cluster = per["ff"]
        self.gates_per_cluster = split(spec.gates)
        self.tsvout_per_cluster = split(spec.tsv_out)
        self.pos_per_cluster = split(spec.primary_outputs)

    def _register(self, cluster: int, net: str, level: int,
                  hub: bool = False, is_tsv: bool = False) -> None:
        self.pools[cluster].add(net, level)
        self.cluster_of_net[net] = cluster
        self.use_counts[net] = 0
        self.unused_set.add(net)
        if hub:
            self.hub_set.add(net)
            self.hubs_by_cluster[cluster].append(net)
        if is_tsv:
            self.tsv_set.add(net)

    def _mark_used(self, net: str) -> None:
        self.use_counts[net] += 1
        self.unused_set.discard(net)

    def _fanout_ok(self, net: str) -> bool:
        spec = self.spec
        if net in self.hub_set:
            cap = spec.hub_fanout
        elif net in self.tsv_set:
            cap = spec.tsv_max_fanout
        else:
            cap = spec.max_fanout
        return self.use_counts[net] < cap

    # ------------------------------------------------------------------
    def _create_sources(self) -> None:
        spec, rng = self.spec, self.rng
        self.clock_net = self.builder.add_clock("clk")
        hub_count = (max(1, round(spec.tsv_in * spec.hub_tsv_fraction))
                     if spec.tsv_in else 0)
        hub_picks = set(rng.sample(range(spec.tsv_in), hub_count)) \
            if spec.tsv_in else set()

        pi_index = tsv_index = ff_index = 0
        for cluster in range(self.plan.clusters):
            for _ in range(self.pis_per_cluster[cluster]):
                net = self.builder.add_input(f"pi{pi_index}")
                pi_index += 1
                self._register(cluster, net, level=0)
            for _ in range(self.tsvin_per_cluster[cluster]):
                net = self.builder.add_input(f"tsvin{tsv_index}",
                                             kind=PortKind.TSV_INBOUND)
                self._register(cluster, net, level=0,
                               hub=(tsv_index in hub_picks), is_tsv=True)
                tsv_index += 1
            for _ in range(self.ffs_per_cluster[cluster]):
                net_name = f"ffq{ff_index}"
                ff_index += 1
                self.builder.netlist.add_net(net_name)
                self.ff_q_nets.append(net_name)
                self._register(cluster, net_name, level=0)

    # ------------------------------------------------------------------
    def _level_plan(self, cluster: int) -> List[int]:
        spec = self.spec
        budget = self.gates_per_cluster[cluster]
        if budget <= 0:
            return []
        low = max(2, spec.max_depth // 2)
        depth = self.rng.child("depth", cluster).randint(low,
                                                         spec.max_depth)
        depth = min(depth, max(1, budget))
        base, extra = divmod(budget, depth)
        return [base + (1 if i < extra else 0) for i in range(depth)]

    def _non_tsv(self, bucket: Sequence[str]) -> List[str]:
        picks = [c for c in bucket if c not in self.tsv_set]
        return picks or list(bucket)

    def _pick_bridge(self, cluster: int) -> Optional[str]:
        """A foreign level-0 source across the next unbridged incident
        edge, or None once the cluster's queue has drained."""
        pending = self.pending_edges[cluster]
        while pending:
            edge = pending[0]
            if edge in self.bridged:
                pending.pop(0)
                continue
            other = edge[1] if edge[0] == cluster else edge[0]
            bucket = self.pools[other].by_level[0]
            if not bucket:
                pending.pop(0)
                continue
            for _attempt in range(6):
                candidate = self.rng.choice(bucket)
                if self._fanout_ok(candidate):
                    break
            else:
                # Over-cap: fall back to any non-TSV foreign source
                # (every cluster owns one by construction).
                candidate = self.rng.choice(self._non_tsv(bucket))
            pending.pop(0)
            self.bridged.add(edge)
            return candidate
        return None

    def _pick_level_setter(self, cluster: int, level: int) -> str:
        pool, rng = self.pools[cluster], self.rng
        queue = pool.unused_by_level[level - 1]
        while queue and queue[-1] not in self.unused_set:
            queue.pop()
        if queue and rng.random() < 0.8:
            return queue[-1]
        candidates = pool.by_level[level - 1]
        if not candidates:
            for l in range(level - 1, -1, -1):
                if pool.by_level[l]:
                    candidates = pool.by_level[l]
                    break
        for _attempt in range(8):
            candidate = rng.choice(candidates)
            if self._fanout_ok(candidate):
                return candidate
        return rng.choice(self._non_tsv(candidates))

    def _pick_filler(self, cluster: int, level: int,
                     exclude: List[str], p_cross: float) -> str:
        spec, rng = self.spec, self.rng
        pool = self.pools[cluster]
        pressure = len(self.unused_set) / max(1, self.remaining_slots)
        p_unused = max(spec.p_unused, min(0.98, 1.4 * pressure))
        excluded = set(exclude)
        neighbors = self.neighbors[cluster]
        hubs = self.hubs_by_cluster[cluster]

        for _attempt in range(8):
            draw = rng.random()
            candidate: Optional[str] = None
            if draw < p_unused:
                candidate = pool.pop_unused_below(level, self.unused_set)
            elif hubs and draw < p_unused + spec.p_hub:
                candidate = rng.choice(hubs)
            if candidate is None:
                # Cross-cluster taps follow topology edges only and
                # read foreign level-0 sources only: modular cones, and
                # the property suite can assert "no wire crosses a
                # non-edge".
                if neighbors and rng.random() < p_cross:
                    other = rng.choice(neighbors)
                    bucket = self.pools[other].by_level[0]
                else:
                    bucket = pool.by_level[rng.randint(0, level - 1)]
                if not bucket:
                    continue
                candidate = rng.choice(bucket)
            if candidate in excluded:
                continue
            owner = self.pools[self.cluster_of_net[candidate]]
            if owner.levels[candidate] >= level:
                continue
            if candidate in self.tsv_set and not self._fanout_ok(candidate):
                continue  # TSV caps are hard, never relaxed by retries
            if not self._fanout_ok(candidate) and _attempt < 6:
                continue
            return candidate

        # Fallback: local non-TSV signals below the level, so the TSV
        # fan-out caps stay hard bounds.
        for _attempt in range(32):
            bucket = pool.by_level[rng.randint(0, level - 1)]
            if not bucket:
                continue
            candidate = rng.choice(bucket)
            if candidate not in excluded and candidate not in self.tsv_set:
                return candidate
        bucket0 = [c for c in pool.by_level[0] if c not in self.tsv_set]
        if bucket0:
            return rng.choice(bucket0)
        return exclude[0] if exclude else pool.by_level[0][0]

    def _create_clouds(self) -> None:
        spec, rng = self.spec, self.rng
        mix = CELL_MIXES[spec.cell_mix]
        cells = [g[0] for g in mix]
        weights = [g[1] for g in mix]
        arity = {g[0]: g[2] for g in mix}

        gate_cells = rng.choices(cells, weights, k=spec.gates)
        self.remaining_slots = sum(arity[c] for c in gate_cells)
        hub_budget = max(1, round(spec.gates * spec.hub_fraction))
        gate_index = 0
        for cluster in range(self.plan.clusters):
            p_cross = spec.cross_probability(
                self.gates_per_cluster[cluster])
            for level_minus_1, count in enumerate(self._level_plan(cluster)):
                level = level_minus_1 + 1
                for _ in range(count):
                    cell_name = gate_cells[gate_index]
                    gate_index += 1
                    n_inputs = arity[cell_name]
                    self.remaining_slots -= n_inputs
                    chosen: List[str] = []
                    # Bridge requirement first: level-1 gates may spend
                    # their setter slot on a foreign level-0 source
                    # (level 0 < 1 keeps the bound), so even one-input
                    # cells can realize a topology edge.
                    if level == 1:
                        bridge = self._pick_bridge(cluster)
                        if bridge is not None:
                            chosen.append(bridge)
                    if not chosen:
                        chosen.append(self._pick_level_setter(cluster,
                                                              level))
                    if len(chosen) < n_inputs:
                        bridge = self._pick_bridge(cluster)
                        if bridge is not None and bridge not in chosen:
                            chosen.append(bridge)
                    while len(chosen) < n_inputs:
                        chosen.append(self._pick_filler(cluster, level,
                                                        chosen, p_cross))
                    for net in chosen:
                        self._mark_used(net)
                    out_net = self.builder.add_gate(cell_name, chosen)
                    promote = hub_budget > 0 and rng.random() < 0.02
                    if promote:
                        hub_budget -= 1
                    self._register(cluster, out_net, level=level,
                                   hub=promote)
                    self.cluster_of_instance[
                        self.builder.netlist.nets[out_net]
                        .driver.owner_name] = cluster

    # ------------------------------------------------------------------
    def _late_signals(self, cluster: int, count: int, taken: set
                      ) -> List[str]:
        """Sink sources from *cluster*, deepest-unused first."""
        pool, rng = self.pools[cluster], self.rng
        chosen: List[str] = []
        ff_q_set = set(self.ff_q_nets)

        for level in range(pool.max_depth, 0, -1):
            if len(chosen) >= count:
                break
            for name in pool.unused_by_level[level]:
                if len(chosen) >= count:
                    break
                if name not in self.unused_set:
                    continue
                if name in taken or name in ff_q_set:
                    continue
                chosen.append(name)
                taken.add(name)

        attempts = 0
        while len(chosen) < count and attempts < 50 * count + 100:
            attempts += 1
            level = pool.max_depth - int((rng.random() ** 1.5)
                                         * pool.max_depth)
            bucket = pool.by_level[min(level, pool.max_depth)]
            if not bucket:
                continue
            candidate = rng.choice(bucket)
            if candidate in taken or candidate in ff_q_set \
                    or candidate in self.tsv_set:
                continue
            chosen.append(candidate)
            taken.add(candidate)

        gate_signals = [n for l in range(1, pool.max_depth + 1)
                        for n in pool.by_level[l]]
        repeats = gate_signals or [n for n in pool.by_level[0]
                                   if n not in self.tsv_set] \
            or pool.by_level[0]
        while len(chosen) < count:
            chosen.append(rng.choice(repeats))
        return chosen

    def _create_sinks(self) -> None:
        taken: set = set()
        out_index = ff_index = po_index = 0
        for cluster in range(self.plan.clusters):
            for src in self._late_signals(
                    cluster, self.tsvout_per_cluster[cluster], taken):
                self._mark_used(src)
                self.builder.add_output(f"tsvout{out_index}", src,
                                        kind=PortKind.TSV_OUTBOUND)
                out_index += 1
            for src in self._late_signals(
                    cluster, self.ffs_per_cluster[cluster], taken):
                self._mark_used(src)
                inst = self.builder.add_flip_flop(
                    src, self.clock_net, scan=True, name=f"ff{ff_index}",
                    q_net=self.ff_q_nets[ff_index])
                self.cluster_of_instance[inst.name] = cluster
                ff_index += 1
            for src in self._late_signals(
                    cluster, self.pos_per_cluster[cluster], taken):
                self._mark_used(src)
                self.builder.add_output(f"po{po_index}", src)
                po_index += 1


def generate_family(family: str, spec: Optional[FamilySpec] = None,
                    seed: int = 2019, library: Optional[Library] = None,
                    name: Optional[str] = None) -> FamilyInstance:
    """Generate one family instance (netlist + plan + cluster maps).

    Fully deterministic: same ``(family, spec, seed)`` -> byte-identical
    netlist (:func:`netlist_fingerprint`), regardless of
    ``PYTHONHASHSEED`` or worker-process fan-out.
    """
    if family not in FAMILIES:
        raise ReproError(f"unknown family {family!r} (have {FAMILIES})")
    generator = _FamilyGenerator(family, spec or FamilySpec(), seed,
                                 library, name)
    return generator.run()


def generate_family_die(family: str, spec: Optional[FamilySpec] = None,
                        seed: int = 2019,
                        library: Optional[Library] = None,
                        name: Optional[str] = None) -> Netlist:
    """Just the netlist of :func:`generate_family` (unstitched,
    unplaced — run placement and scan stitching next, as with
    :func:`repro.bench.generator.generate_die`)."""
    return generate_family(family, spec, seed, library, name).netlist


def family_die_specs(spec: FamilySpec, dies: int = 4
                     ) -> List[FamilySpec]:
    """Per-die spec variants for a homogeneous family stack: the die
    index only perturbs the TSV split (upper dies trade inbound for
    outbound), mirroring Table II's unequal per-die totals."""
    out: List[FamilySpec] = []
    for index in range(dies):
        shift = min(index, spec.tsv_in // 2, spec.tsv_out // 2)
        out.append(replace(spec, tsv_in=spec.tsv_in - shift,
                           tsv_out=spec.tsv_out + shift))
    return out
