"""Whole-stack generation from Table II profiles or topology families.

Builds all dies of a stack and wires a plausible bonding map: each
inbound TSV of each die is fed by an outbound TSV of another die
(round-robin over the other dies), and outbound TSVs left over after
all inbounds are satisfied are external links (bumps to the package or
to dies outside the reported netlist) — Table II itself has unequal
inbound/outbound totals, so such externals must exist.

Pre-bond analysis never consults the links; they make the stack
self-consistent for the post-bond examples. Family stacks
(:func:`generate_family_stack`) reuse the same bonding over
:mod:`repro.bench.families` dies.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bench.generator import DieGeneratorConfig, generate_die
from repro.bench.itc99 import DIES_PER_CIRCUIT, profiles_for_circuit
from repro.netlist.core import Netlist
from repro.netlist.library import Library
from repro.threed.model import Stack3D, TsvLink
from repro.util.rng import DeterministicRng


def bond_stack(name: str, dies: List[Netlist], seed: int) -> Stack3D:
    """Wire *dies* into a validated :class:`Stack3D` with a
    deterministic round-robin TSV bonding map."""
    rng = DeterministicRng(seed).child("stack", name)

    inbound_by_die: Dict[int, List[str]] = {}
    outbound_by_die: Dict[int, List[str]] = {}
    for index, die in enumerate(dies):
        inbound_by_die[index] = [p.name for p in die.inbound_tsvs()]
        outbound_by_die[index] = [p.name for p in die.outbound_tsvs()]
        rng.child("shuffle_in", index).shuffle(inbound_by_die[index])
        rng.child("shuffle_out", index).shuffle(outbound_by_die[index])

    links: List[TsvLink] = []
    remaining_out = {d: list(ports) for d, ports in outbound_by_die.items()}

    link_index = 0
    for die_index in range(len(dies)):
        for in_port in inbound_by_die[die_index]:
            # Pick a source die (any other die with spare outbounds),
            # preferring vertical neighbours.
            preference = sorted(
                (d for d in range(len(dies))
                 if d != die_index and remaining_out[d]),
                key=lambda d: abs(d - die_index),
            )
            if not preference:
                break  # no spare outbounds anywhere; leave inbound unbonded
            source_die = preference[0]
            out_port = remaining_out[source_die].pop()
            links.append(TsvLink(
                name=f"{name}_link{link_index}",
                source_die=source_die,
                source_port=out_port,
                target_die=die_index,
                target_port=in_port,
            ))
            link_index += 1

    # Leftover outbounds leave the stack (external bumps).
    for die_index, ports in remaining_out.items():
        for out_port in ports:
            links.append(TsvLink(
                name=f"{name}_ext{link_index}",
                source_die=die_index,
                source_port=out_port,
                target_die=None,
                target_port=None,
            ))
            link_index += 1

    stack = Stack3D(name=name, dies=dies, links=links)
    stack.validate_links()
    return stack


def generate_stack(circuit: str, seed: int = 2019,
                   config: Optional[DieGeneratorConfig] = None,
                   library: Optional[Library] = None) -> Stack3D:
    """Generate the full 4-die stack of *circuit* with bonded TSV links."""
    profiles = profiles_for_circuit(circuit)
    assert len(profiles) == DIES_PER_CIRCUIT
    dies = [generate_die(p, seed=seed, config=config, library=library)
            for p in profiles]
    return bond_stack(circuit, dies, seed)


def generate_family_stack(family: str, spec=None, seed: int = 2019,
                          dies: int = 4,
                          library: Optional[Library] = None) -> Stack3D:
    """A homogeneous *dies*-high stack of one topology family.

    Each die derives from the same spec with the TSV split perturbed
    per die index (see :func:`repro.bench.families.family_die_specs`)
    and a die-derived seed, then the dies are bonded exactly like the
    Table II stacks.
    """
    from repro.bench.families import (FamilySpec, family_die_specs,
                                      generate_family_die)

    spec = spec or FamilySpec()
    die_netlists = [
        generate_family_die(family, die_spec, seed=seed + index,
                            library=library,
                            name=f"{family}_s{seed}_die{index}")
        for index, die_spec in enumerate(family_die_specs(spec, dies))
    ]
    return bond_stack(f"{family}_s{seed}", die_netlists, seed)
