"""Stable content fingerprints for cache keys.

The runtime's result cache (:mod:`repro.runtime.cache`) is content-
addressed: a cache key is the SHA-256 of a *canonical* JSON rendering
of everything that determines the computation (die profile, method
configuration, seeds, schema version). Canonicalization must be stable
across processes, Python versions and ``PYTHONHASHSEED`` values, so:

* dicts are serialized with sorted keys,
* dataclasses carry their class name (two configs with identical
  fields but different types never collide),
* sets/frozensets are sorted,
* floats go through :func:`repr` (which round-trips, and renders
  non-finite values ``json`` would reject),
* enums serialize as ``ClassName.value``.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any


def canonicalize(obj: Any) -> Any:
    """Reduce *obj* to JSON-serializable primitives, deterministically."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips doubles and handles inf/-inf/nan uniformly.
        return repr(obj)
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.value}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: canonicalize(getattr(obj, f.name))
                  for f in dataclasses.fields(obj)}
        return {"__dataclass__": type(obj).__name__, **fields}
    if isinstance(obj, dict):
        return {str(key): canonicalize(value)
                for key, value in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonicalize(item) for item in obj)
    raise TypeError(f"cannot canonicalize {type(obj).__name__}: {obj!r}")


def fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of the canonical rendering of *obj*."""
    canonical = json.dumps(canonicalize(obj), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
