"""Deterministic random-number helpers.

All stochastic steps in the package (circuit generation, placement
jitter, random-pattern ATPG) draw from a :class:`DeterministicRng` seeded
from an explicit root seed so that every experiment is reproducible
bit-for-bit across runs and machines.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(root: int, *labels: object) -> int:
    """Derive a child seed from *root* and a label path.

    Uses SHA-256 so unrelated labels produce statistically independent
    streams, and a change in one subsystem's draws never perturbs
    another's.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(root)).encode("utf-8"))
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


class DeterministicRng:
    """A thin wrapper over :class:`random.Random` with seed derivation.

    The wrapper exists so call sites never touch the global ``random``
    module and so child generators can be split off by label::

        rng = DeterministicRng(1234)
        placement_rng = rng.child("placement", die_index)
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._random = random.Random(self.seed)

    def child(self, *labels: object) -> "DeterministicRng":
        """Return an independent generator derived from this one."""
        return DeterministicRng(derive_seed(self.seed, *labels))

    # -- passthroughs ---------------------------------------------------
    def random(self) -> float:
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Inclusive-range integer, mirroring random.randint."""
        return self._random.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    def choice(self, items: Sequence[T]) -> T:
        return self._random.choice(items)

    def choices(self, items: Sequence[T], weights: Sequence[float], k: int) -> List[T]:
        return self._random.choices(items, weights=weights, k=k)

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        return self._random.sample(items, k)

    def shuffle(self, items: list) -> None:
        self._random.shuffle(items)

    def getrandbits(self, bits: int) -> int:
        return self._random.getrandbits(bits)

    def shuffled(self, items: Iterable[T]) -> List[T]:
        """Return a shuffled copy, leaving the input untouched."""
        copy = list(items)
        self._random.shuffle(copy)
        return copy
