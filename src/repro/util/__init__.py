"""Shared utilities: errors, deterministic RNG, table rendering."""

from repro.util.errors import (
    ReproError,
    NetlistError,
    LibraryError,
    TimingError,
    AtpgError,
    PartitionError,
    ConfigError,
)
from repro.util.rng import DeterministicRng, derive_seed
from repro.util.tables import AsciiTable, format_percent, format_pair

__all__ = [
    "ReproError",
    "NetlistError",
    "LibraryError",
    "TimingError",
    "AtpgError",
    "PartitionError",
    "ConfigError",
    "DeterministicRng",
    "derive_seed",
    "AsciiTable",
    "format_percent",
    "format_pair",
]
