"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch domain failures without swallowing programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class NetlistError(ReproError):
    """Structural problem in a netlist: dangling net, duplicate name,
    multiple drivers, unknown pin, combinational cycle."""


class LibraryError(ReproError):
    """Unknown cell type, pin, or malformed library data."""


class TimingError(ReproError):
    """Static-timing analysis failure (e.g. no clock defined, or timing
    queried for a node outside the analyzed netlist)."""


class AtpgError(ReproError):
    """Fault-model or test-generation failure."""


class PartitionError(ReproError):
    """3D partitioning failure (infeasible balance, empty die)."""


class ConfigError(ReproError):
    """Invalid WCM configuration (e.g. negative thresholds)."""


class RuntimeExecutionError(ReproError):
    """A supervised experiment sweep could not complete a cell (worker
    crash, repeated failure, broken worker pool) under a strict policy,
    or the pool itself became unusable."""


class CellTimeoutError(RuntimeExecutionError):
    """One experiment cell exceeded its wall-clock budget and its
    worker was killed."""
