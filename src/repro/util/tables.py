"""Plain-text table rendering for experiment reports.

Every experiment driver prints its result as an ASCII table shaped like
the corresponding table in the paper, so a reader can diff them by eye.
"""

from __future__ import annotations

from typing import List, Sequence


def format_percent(value: float, digits: int = 2) -> str:
    """Format a ratio (0..1) as a percentage string, e.g. ``99.34%``."""
    return f"{100.0 * value:.{digits}f}%"


def format_pair(coverage: float, patterns: int) -> str:
    """Format a (fault coverage, #test patterns) pair as in Tables IV/V."""
    return f"({format_percent(coverage)}, {patterns})"


class AsciiTable:
    """Minimal fixed-width table renderer.

    >>> t = AsciiTable(["circuit", "die", "#cells"])
    >>> t.add_row(["b12", "Die0", 3])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, cells: Sequence[object]) -> None:
        row = [str(cell) for cell in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def add_separator(self) -> None:
        self.rows.append(["---"] * len(self.headers))

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def render_line(cells: Sequence[str]) -> str:
            return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

        divider = "-+-".join("-" * w for w in widths)
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(render_line(self.headers))
        lines.append(divider)
        for row in self.rows:
            if all(cell == "---" for cell in row):
                lines.append(divider)
            else:
                lines.append(render_line(row))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        lines: List[str] = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            if all(cell == "---" for cell in row):
                continue
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)
