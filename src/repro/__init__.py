"""repro — timing-aware wrapper-cell reduction for pre-bond 3D-IC test.

A from-scratch reproduction of Ho et al., "Timing Aware Wrapper Cells
Reduction for Pre-bond Testing in 3D-ICs" (SOCC 2019), including every
substrate the paper's flow depends on. See README.md for a tour and
DESIGN.md for the system inventory.

Public API by subsystem:

* :mod:`repro.netlist` — cell library, netlist model, cones, Verilog,
  validation, functional equivalence checking
* :mod:`repro.bench` — ITC'99-calibrated die/stack generation
* :mod:`repro.threed` — stack model and FM min-cut partitioning
* :mod:`repro.place` — placement and wirelength
* :mod:`repro.sta` — static timing analysis with case analysis
* :mod:`repro.dft` — scan stitching, wrapper insertion, test views,
  area accounting, post-bond views
* :mod:`repro.atpg` — fault models, packed simulation, PODEM, the
  stuck-at and transition ATPG flows
* :mod:`repro.core` — the paper's contribution: scenarios, the
  accurate reuse timing model, Algorithm 1/2, the end-to-end flow and
  the Agrawal/Li baselines
* :mod:`repro.experiments` — regenerate every table and figure

Quick start::

    from repro.bench import die_profile, generate_die
    from repro.core import Scenario, WcmConfig, build_problem, run_wcm_flow

    netlist = generate_die(die_profile("b12", 1))
    problem = build_problem(netlist)
    run = run_wcm_flow(problem, WcmConfig.ours(Scenario.area_optimized()))
    print(run.reused_scan_ffs, run.additional_wrapper_cells)
"""

__version__ = "1.0.0"

__all__ = [
    "netlist",
    "bench",
    "threed",
    "place",
    "sta",
    "dft",
    "atpg",
    "core",
    "experiments",
    "util",
]
