"""Replay every checked-in repro: the fuzzer's fossil record.

Each JSON under ``tests/repros/`` is an :class:`InstanceSpec` promoted
from a fuzz run (``repro fuzz --repro-dir tests/repros``) or seeded as
a degenerate-corner regression anchor. Replaying runs the *full* check
registry — any divergence here is a kernel/oracle regression.
"""

from pathlib import Path

import pytest

from repro.runtime.backend import numpy_available
from repro.runtime.config import configure
from repro.verify import InstanceSpec, run_checks

REPRO_DIR = Path(__file__).parent / "repros"
REPRO_FILES = sorted(REPRO_DIR.glob("*.json"))


def test_corpus_is_not_empty():
    """The corpus must exist — an empty glob would silently skip the
    replay test entirely."""
    assert REPRO_FILES, f"no repro JSONs under {REPRO_DIR}"


def test_corpus_covers_degenerate_corners():
    """The seeded corpus keeps the corner shapes the kernels
    special-case under test forever."""
    specs = [InstanceSpec.load(path) for path in REPRO_FILES]
    assert any(s.tsv_in == 0 for s in specs), "no zero-inbound repro"
    assert any(s.tsv_out == 0 for s in specs), "no zero-outbound repro"
    assert any(s.coincident for s in specs), "no coincident repro"
    assert any(s.d_th_boundary for s in specs), "no d_th-boundary repro"
    assert any(s.scenario == "area" for s in specs), "no area repro"
    assert any(s.method == "agrawal" for s in specs), "no agrawal repro"
    # Topology-family corners (promoted alongside the family axis).
    assert any(s.family == "star" and s.tsv_in == 0 and s.tsv_out == 0
               for s in specs), "no zero-TSV star repro"
    assert any(s.family == "htree" and s.fanout_cap is not None
               for s in specs), "no fanout-capped htree repro"
    assert any(s.family == "grid" and s.d_th_boundary
               for s in specs), "no d_th-boundary grid repro"
    assert any(s.family == "ring" for s in specs), \
        "no degenerate-ring repro"
    # Scheduling corners (promoted with the schedule check): a single
    # internal chain buried under TSV wrapper cells, and a coincident
    # FF-rich die whose reduced wrapper collapses to almost no cells.
    assert any(s.ffs == 1 and s.tsv_in + s.tsv_out >= 12
               for s in specs), "no single-chain TSV-heavy repro"
    assert any(s.coincident and s.ffs >= 6 for s in specs), \
        "no coincident FF-rich repro"


@pytest.mark.parametrize("backend", ["python", "numpy"])
@pytest.mark.parametrize("path", REPRO_FILES, ids=lambda p: p.stem)
def test_repro_replays_clean(path, backend):
    """The corpus replays clean on both kernel backends — every repro
    that once caught a python-kernel bug also guards the numpy one."""
    if backend == "numpy" and not numpy_available():
        pytest.skip("numpy not installed")
    configure(backend=backend)
    try:
        spec = InstanceSpec.load(path)
        divergences = run_checks(spec)
    finally:
        configure(backend="python")
    assert not divergences, "\n".join(divergences)


@pytest.mark.parametrize("path", REPRO_FILES, ids=lambda p: p.stem)
def test_repro_round_trips(path):
    """load -> to_json -> from_json is the identity, and the file name
    matches the spec's slug (so promotions never collide silently)."""
    spec = InstanceSpec.load(path)
    assert InstanceSpec.from_json(spec.to_json()) == spec
    assert path.stem == spec.slug()
