"""Tests for the supervised experiment runtime.

Crash isolation, per-cell timeouts, same-seed retry determinism and
checkpoint/resume, on plain picklable cell functions (the chaos suite
in tests/chaos/ exercises the same machinery through a real driver).
"""

import os
import pathlib
import random
import time

import pytest

from repro.runtime.supervisor import (
    FAILED,
    OK,
    RETRIED,
    TIMEOUT,
    CellOutcome,
    SupervisorPolicy,
    supervised_map,
    sweep_fingerprint,
)
from repro.util.errors import (
    CellTimeoutError,
    RuntimeExecutionError,
)


def _square(value):
    return value * value


def _draw(_cell):
    return random.random()


def _boom(value):
    if value == 3:
        raise ValueError("cell 3 is cursed")
    return value * value


def _exit_cell(value):
    if value == 2:
        os._exit(139)
    return value * value


def _sleep_cell(value):
    if value == 1:
        time.sleep(60)
    return value * value


class _Recorder:
    """Cell fn that leaves a marker file per computed cell."""

    def __init__(self, root):
        self.root = str(root)

    def __call__(self, value):
        marker = pathlib.Path(self.root) / f"cell-{value}.txt"
        marker.write_text(str(random.random()))
        return value * value


class TestHappyPath:
    def test_serial_and_parallel_outcomes_agree(self):
        cells = list(range(8))
        serial = supervised_map(_square, cells, jobs=1)
        parallel = supervised_map(_square, cells, jobs=3)
        assert serial.results == parallel.results == \
            [v * v for v in cells]
        assert all(o.status == OK for o in parallel.outcomes)
        assert not parallel.failures

    def test_per_cell_seed_matches_serial(self):
        serial = supervised_map(_draw, range(6), jobs=1, seed=11)
        parallel = supervised_map(_draw, range(6), jobs=2, seed=11)
        assert serial.results == parallel.results
        assert len(set(serial.results)) == 6

    def test_results_or_raise_passthrough(self):
        sweep = supervised_map(_square, [2, 4], jobs=1)
        assert sweep.results_or_raise() == [4, 16]


class TestCrashIsolation:
    def test_exception_becomes_failed_outcome(self):
        sweep = supervised_map(_boom, range(6), jobs=2)
        bad = sweep.outcomes[3]
        assert bad.status == FAILED and not bad.ok
        assert "cursed" in bad.error
        assert bad.result is None
        good = [o for i, o in enumerate(sweep.outcomes) if i != 3]
        assert [o.result for o in good] == [0, 1, 4, 16, 25]

    def test_worker_crash_is_contained(self):
        # os._exit would kill a serial run; the supervisor must force
        # process isolation and report the exit code.
        policy = SupervisorPolicy(timeout_s=60.0)
        sweep = supervised_map(_exit_cell, range(5), jobs=2,
                               policy=policy)
        crashed = sweep.outcomes[2]
        assert crashed.status == FAILED
        assert "crashed" in crashed.error
        survivors = [o.result for i, o in enumerate(sweep.outcomes)
                     if i != 2]
        assert survivors == [0, 1, 9, 16]

    def test_crash_survivors_match_clean_run(self):
        clean = supervised_map(_draw, range(5), jobs=1, seed=5)

        policy = SupervisorPolicy(timeout_s=60.0)
        injured = supervised_map(_mixed_crash_draw, range(5), jobs=2,
                                 seed=5, policy=policy)
        assert injured.outcomes[2].status == FAILED
        for index in (0, 1, 3, 4):
            assert injured.outcomes[index].result == \
                clean.outcomes[index].result


def _mixed_crash_draw(value):
    if value == 2:
        os._exit(1)
    return random.random()


class TestTimeout:
    def test_hung_cell_is_killed(self):
        policy = SupervisorPolicy(timeout_s=2.0)
        started = time.monotonic()
        sweep = supervised_map(_sleep_cell, range(4), jobs=2,
                               policy=policy)
        elapsed = time.monotonic() - started
        hung = sweep.outcomes[1]
        assert hung.status == TIMEOUT and not hung.ok
        assert "wall-clock" in hung.error
        assert elapsed < 30  # nowhere near the 60s sleep
        survivors = [o.result for i, o in enumerate(sweep.outcomes)
                     if i != 1]
        assert survivors == [0, 4, 9]

    def test_strict_timeout_raises_cell_timeout_error(self):
        policy = SupervisorPolicy(timeout_s=2.0, strict=True)
        with pytest.raises(CellTimeoutError):
            supervised_map(_sleep_cell, range(4), jobs=2, policy=policy)


class TestRetries:
    def test_retried_cell_is_byte_identical(self):
        from repro.runtime.chaos import ChaosPlan, ChaosSpec

        clean = supervised_map(_draw, range(5), jobs=1, seed=9)
        plan = ChaosPlan(cells={2: ChaosSpec("raise", attempts=1)})
        policy = SupervisorPolicy(retries=1, chaos=plan)
        retried = supervised_map(_draw, range(5), jobs=2, seed=9,
                                 policy=policy)
        assert retried.outcomes[2].status == RETRIED
        assert retried.outcomes[2].ok
        assert retried.outcomes[2].attempts == 2
        assert retried.results == clean.results

    def test_retries_exhausted_marks_failed(self):
        from repro.runtime.chaos import ChaosPlan, ChaosSpec

        plan = ChaosPlan(cells={1: ChaosSpec("raise", attempts=99)})
        policy = SupervisorPolicy(retries=2, chaos=plan)
        sweep = supervised_map(_square, range(3), jobs=2, policy=policy)
        assert sweep.outcomes[1].status == FAILED
        assert sweep.outcomes[1].attempts == 3

    def test_strict_failure_raises_with_cause(self):
        policy = SupervisorPolicy(strict=True)
        with pytest.raises(RuntimeExecutionError) as excinfo:
            supervised_map(_boom, range(6), jobs=2, policy=policy)
        assert "cell 3" in str(excinfo.value)


class TestCheckpoint:
    def test_resume_recomputes_only_missing_cells(self, tmp_path):
        work = tmp_path / "work"
        work.mkdir()
        policy = SupervisorPolicy(checkpoint_dir=str(tmp_path / "ckpt"))
        fn = _Recorder(work)
        first = supervised_map(fn, range(5), jobs=1, seed=3,
                               policy=policy)
        assert len(list(work.glob("cell-*.txt"))) == 5

        # Simulate the interruption: drop the journal entries for the
        # last two cells, then resume.
        ckpt_files = list((tmp_path / "ckpt").glob("*.ckpt"))
        assert len(ckpt_files) == 1
        _truncate_checkpoint(ckpt_files[0], keep=3)
        for marker in work.glob("cell-*.txt"):
            marker.unlink()

        second = supervised_map(fn, range(5), jobs=1, seed=3,
                                policy=policy)
        recomputed = sorted(p.name for p in work.glob("cell-*.txt"))
        assert recomputed == ["cell-3.txt", "cell-4.txt"]
        assert [o.from_checkpoint for o in second.outcomes] == \
            [True, True, True, False, False]
        assert second.results == first.results

    def test_failed_cells_are_not_checkpointed(self, tmp_path):
        policy = SupervisorPolicy(checkpoint_dir=str(tmp_path))
        first = supervised_map(_boom, range(5), jobs=1, policy=policy)
        assert first.outcomes[3].status == FAILED
        second = supervised_map(_boom, range(5), jobs=1, policy=policy)
        assert second.outcomes[3].status == FAILED
        assert not second.outcomes[3].from_checkpoint
        assert [o.from_checkpoint for i, o in
                enumerate(second.outcomes) if i != 3] == [True] * 4

    def test_torn_tail_is_tolerated(self, tmp_path):
        policy = SupervisorPolicy(checkpoint_dir=str(tmp_path))
        supervised_map(_square, range(4), jobs=1, seed=1, policy=policy)
        ckpt = next(tmp_path.glob("*.ckpt"))
        # Tear the final record mid-frame.
        data = ckpt.read_bytes()
        ckpt.write_bytes(data[:-3])
        sweep = supervised_map(_square, range(4), jobs=1, seed=1,
                               policy=policy)
        assert sweep.results == [0, 1, 4, 9]
        flags = [o.from_checkpoint for o in sweep.outcomes]
        assert flags.count(True) == 3  # torn record recomputed

    def test_different_sweep_does_not_reuse_checkpoint(self, tmp_path):
        policy = SupervisorPolicy(checkpoint_dir=str(tmp_path))
        supervised_map(_square, range(4), jobs=1, seed=1, policy=policy)
        other = supervised_map(_square, range(4), jobs=1, seed=2,
                               policy=policy)
        assert not any(o.from_checkpoint for o in other.outcomes)

    def test_fingerprint_is_stable(self):
        cells = [("b11", 0), ("b11", 1)]
        assert sweep_fingerprint("t", 1, cells) == \
            sweep_fingerprint("t", 1, cells)
        assert sweep_fingerprint("t", 1, cells) != \
            sweep_fingerprint("t", 2, cells)


def _truncate_checkpoint(path, keep):
    """Drop all but the first ``keep`` result records from a journal
    (magic line and header frame preserved), as if the sweep had been
    killed after completing ``keep`` cells."""
    from repro.runtime.supervisor import _LEN, _MAGIC

    data = path.read_bytes()
    assert data.startswith(_MAGIC)

    def frame_end(pos):
        (length,) = _LEN.unpack(data[pos:pos + _LEN.size])
        return pos + _LEN.size + length

    pos = frame_end(len(_MAGIC))  # header frame
    for _ in range(keep):
        pos = frame_end(pos)
    path.write_bytes(data[:pos])


class TestOutcomeApi:
    def test_describe_mentions_status_and_attempts(self):
        outcome = CellOutcome(index=4, status=FAILED,
                              error="ValueError: nope", attempts=2)
        text = outcome.describe()
        assert "failed" in text and "2" in text and "nope" in text

    def test_ok_property(self):
        assert CellOutcome(0, OK).ok
        assert CellOutcome(0, RETRIED).ok
        assert not CellOutcome(0, FAILED).ok
        assert not CellOutcome(0, TIMEOUT).ok


def _drain_at_two(value):
    from repro.runtime.supervisor import request_drain
    if value == 2:
        request_drain()
    return value * value


def _slow_draw(value):
    time.sleep(0.4)
    return (value, round(random.random(), 12))


_SIGTERM_SCRIPT = """
import random
import sys
import time

from repro.runtime.supervisor import (SupervisorPolicy,
                                      install_drain_handlers,
                                      supervised_map)


def cell(value):
    time.sleep(0.4)
    return round(random.random(), 12)


install_drain_handlers()
result = supervised_map(cell, range(6), jobs=2, seed=3,
                        policy=SupervisorPolicy(
                            checkpoint_dir=sys.argv[1]),
                        label="sigdrain")
print("DRAINED" if result.drained else "COMPLETE")
print(",".join(repr(r) for r in result.results if r is not None))
"""


class TestDrain:
    def teardown_method(self):
        from repro.runtime.supervisor import clear_drain
        clear_drain()

    def test_serial_drain_finishes_current_cell_rest_pending(self):
        from repro.runtime.supervisor import PENDING

        result = supervised_map(_drain_at_two, range(6), jobs=1)
        assert result.drained
        assert [o.status for o in result.outcomes[:3]] == [OK] * 3
        assert result.results[:3] == [0, 1, 4]
        assert [o.status for o in result.outcomes[3:]] == [PENDING] * 3
        assert result.pending == list(result.outcomes[3:])
        assert not result.failures  # pending is not failure...
        assert not result.ok        # ...but the sweep is not done either

    def test_stale_drain_flag_is_cleared_per_sweep(self):
        from repro.runtime.supervisor import request_drain

        request_drain()  # e.g. leaked by an interrupted earlier sweep
        result = supervised_map(_square, range(4), jobs=1)
        assert result.ok and not result.drained

    def test_parallel_drain_checkpoints_then_resumes_identically(
            self, tmp_path):
        import threading

        from repro.runtime.supervisor import request_drain

        policy = SupervisorPolicy(checkpoint_dir=str(tmp_path / "ckpt"))
        timer = threading.Timer(0.3, request_drain)
        timer.start()
        first = supervised_map(_slow_draw, range(6), jobs=2, seed=7,
                               policy=policy, label="drainres")
        timer.cancel()
        assert first.drained
        assert first.pending  # drain hit before the sweep finished
        done_first = {o.index for o in first.outcomes if o.status == OK}
        assert done_first  # in-flight cells were finished, not killed

        second = supervised_map(_slow_draw, range(6), jobs=2, seed=7,
                                policy=policy, label="drainres")
        assert second.ok and not second.drained
        for outcome in second.outcomes:
            if outcome.index in done_first:
                assert outcome.from_checkpoint  # not recomputed

        clean = supervised_map(_slow_draw, range(6), jobs=2, seed=7)
        assert second.results == clean.results  # byte-identical resume


class TestSigtermDrain:
    def _run(self, checkpoint_dir, interrupt):
        import signal
        import subprocess
        import sys as _sys

        import repro

        env = dict(os.environ)
        src = str(pathlib.Path(repro.__file__).parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [_sys.executable, "-c", _SIGTERM_SCRIPT,
             str(checkpoint_dir)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        try:
            if interrupt:
                time.sleep(0.8)  # interpreter up, first wave running
                proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        return proc.returncode, out

    def test_sigterm_mid_batch_checkpoints_and_resumes_identically(
            self, tmp_path):
        ckpt = tmp_path / "ckpt"
        code, out = self._run(ckpt, interrupt=True)
        assert code == 0  # graceful: drained, not killed
        assert "DRAINED" in out

        code, resumed = self._run(ckpt, interrupt=False)
        assert code == 0
        assert "COMPLETE" in resumed

        code, clean = self._run(tmp_path / "fresh", interrupt=False)
        assert code == 0
        assert resumed.splitlines()[-1] == clean.splitlines()[-1]
