"""Tests for equivalence checking, area accounting and post-bond views."""

import pytest

from repro.atpg.engine import AtpgConfig, run_stuck_at_atpg
from repro.bench.generator import generate_die
from repro.bench.itc99 import die_profile
from repro.bench.stack import generate_stack
from repro.dft.area import area_of_insertion, compare_plans, plan_area_estimate
from repro.dft.postbond import build_postbond_test_view, merge_stack_netlist
from repro.dft.scan import stitch_scan_chains
from repro.dft.testview import build_prebond_test_view
from repro.dft.wrapper import dedicated_plan, insert_wrappers
from repro.netlist.equivalence import check_functional_equivalence
from repro.netlist.validate import validate_netlist
from repro.place.placer import place_die


@pytest.fixture(scope="module")
def wrapped_pair():
    netlist = generate_die(die_profile("b11", 0), seed=31)
    place_die(netlist)
    stitch_scan_chains(netlist)
    wrapped, report = insert_wrappers(netlist, dedicated_plan(netlist))
    stitch_scan_chains(wrapped, restitch=True)
    return netlist, wrapped, report


class TestEquivalence:
    def test_insertion_is_functionally_invisible(self, wrapped_pair):
        bare, wrapped, _report = wrapped_pair
        result = check_functional_equivalence(bare, wrapped, patterns=1024)
        assert result.equivalent, result.mismatch
        assert result.compared_observables > 0

    def test_wcm_plans_are_functionally_invisible(self, medium_problem):
        from repro.core.config import Scenario, WcmConfig
        from repro.core.flow import run_wcm_flow

        run = run_wcm_flow(medium_problem,
                           WcmConfig.ours(Scenario.area_optimized()))
        result = check_functional_equivalence(
            medium_problem.netlist, run.wrapped_netlist, patterns=768)
        assert result.equivalent, result.mismatch

    def test_detects_injected_bug(self, wrapped_pair):
        bare, wrapped, _report = wrapped_pair
        broken = wrapped.clone("broken")
        # Swap one gate's function: NAND -> NOR somewhere.
        victim = next(i for i in broken.instances.values()
                      if i.cell.name == "NAND2_X1")
        victim.cell = broken.library.get("NOR2_X1")
        result = check_functional_equivalence(bare, broken, patterns=1024)
        assert not result.equivalent
        assert result.mismatch is not None
        assert result.mismatch.stimulus  # reproducible stimulus given

    def test_deterministic(self, wrapped_pair):
        bare, wrapped, _report = wrapped_pair
        a = check_functional_equivalence(bare, wrapped, patterns=256, seed=4)
        b = check_functional_equivalence(bare, wrapped, patterns=256, seed=4)
        assert a.equivalent == b.equivalent
        assert a.patterns_checked == b.patterns_checked


class TestAreaAccounting:
    def test_insertion_report_pricing(self, wrapped_pair):
        bare, _wrapped, report = wrapped_pair
        area = area_of_insertion(bare, report)
        assert area.logic_area_um2 > 0
        assert area.wrapper_cell_area_um2 > 0
        assert area.dft_area_um2 == pytest.approx(
            area.wrapper_cell_area_um2 + area.mux_area_um2
            + area.xor_area_um2 + area.buffer_area_um2)
        assert "overhead" in area.render()

    def test_plan_estimate_matches_insertion(self, wrapped_pair):
        bare, _wrapped, report = wrapped_pair
        estimate = plan_area_estimate(bare, dedicated_plan(bare))
        actual = area_of_insertion(bare, report)
        assert estimate.wrapper_cell_area_um2 \
            == actual.wrapper_cell_area_um2
        assert estimate.mux_area_um2 == actual.mux_area_um2

    def test_reuse_costs_less_than_dedicated(self, medium_problem):
        from repro.core.config import Scenario, WcmConfig
        from repro.core.flow import run_wcm_flow

        run = run_wcm_flow(medium_problem,
                           WcmConfig.ours(Scenario.area_optimized()))
        reuse = plan_area_estimate(medium_problem.netlist, run.plan)
        dedicated = plan_area_estimate(medium_problem.netlist,
                                       dedicated_plan(medium_problem.netlist))
        assert reuse.wrapper_cell_area_um2 \
            < dedicated.wrapper_cell_area_um2

    def test_compare_plans_renders(self, medium_problem):
        text = compare_plans(medium_problem.netlist, {
            "dedicated": dedicated_plan(medium_problem.netlist),
        })
        assert "dedicated" in text and "overhead" in text


class TestPostBond:
    @pytest.fixture(scope="class")
    def stack(self):
        return generate_stack("b11", seed=31)

    def test_merged_stack_validates(self, stack):
        merged = merge_stack_netlist(stack)
        validate_netlist(merged, allow_undriven_nets=True)
        # gates conserved; bond registers added
        assert merged.gate_count == sum(d.gate_count for d in stack.dies)
        bonded = sum(1 for l in stack.links if not l.is_external)
        total_ffs = sum(len(d.flip_flops()) for d in stack.dies)
        assert len(merged.flip_flops()) == total_ffs + bonded

    def test_bonded_inbound_no_longer_floating(self, stack):
        view = build_postbond_test_view(stack)
        bonded_targets = {(l.target_die, l.target_port)
                          for l in stack.links if not l.is_external}
        assert bonded_targets  # the stack has real bonds
        # every remaining X net belongs to an unbonded inbound port
        merged = view.netlist
        for net in view.x_nets:
            ports = [p for p in merged.ports.values() if p.net == net]
            assert ports and all(not p.name.split("/")[-1].startswith("bond")
                                 for p in ports)

    def test_postbond_coverage_beats_prebond_on_tsv_paths(self, stack):
        """Bonding closes the KGD gap: the union of per-die pre-bond
        views leaves TSV nets dark that post-bond testing reaches."""
        config = AtpgConfig(seed=7, block_width=64, max_random_blocks=5,
                            podem_fault_limit=50, fault_sample=900)
        post = run_stuck_at_atpg(build_postbond_test_view(stack), config)
        assert post.coverage > 0.85
