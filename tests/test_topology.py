"""Tests for levelization and cone analysis."""

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.core import PortKind
from repro.netlist.topology import (
    combinational_levels,
    cones_overlap,
    fanin_cone,
    fanout_cone,
    topological_instances,
)
from repro.util.errors import NetlistError


class TestTopologicalOrder:
    def test_order_respects_dependencies(self, tiny_netlist):
        order = topological_instances(tiny_netlist)
        assert order.index("g_nand") < order.index("g_xor")
        assert order.index("g_xor") < order.index("g_inv")

    def test_sequential_instances_not_ordered(self, tiny_netlist):
        assert "ff0" not in topological_instances(tiny_netlist)

    def test_cycle_detected(self):
        builder = NetlistBuilder("cyc")
        a = builder.add_input("a")
        netlist = builder.netlist
        netlist.add_instance("g0", "AND2_X1")
        netlist.add_instance("g1", "INV_X1")
        netlist.connect("g0", "A1", a)
        netlist.connect("g0", "A2", "loop")
        netlist.connect("g0", "Z", "mid")
        netlist.connect("g1", "A", "mid")
        netlist.connect("g1", "ZN", "loop")
        with pytest.raises(NetlistError, match="cycle"):
            topological_instances(netlist)

    def test_levels_increase_along_paths(self, small_die):
        levels = combinational_levels(small_die)
        for name in topological_instances(small_die):
            inst = small_die.instance(name)
            for _pin, net in inst.input_nets():
                drv = small_die.net(net).driver
                if drv is None or drv.is_port:
                    continue
                upstream = small_die.instance(drv.owner_name)
                if not upstream.is_sequential:
                    assert levels[drv.owner_name] < levels[name]

    def test_generated_depth_bounded(self, medium_die):
        levels = combinational_levels(medium_die)
        assert max(levels.values()) <= 12  # generator max_depth


class TestCones:
    def test_fanout_of_inbound_tsv(self, tiny_netlist):
        cone = fanout_cone(tiny_netlist, "tsv_in0__port")
        # reaches NAND, XOR, INV, the FF, both output ports
        assert "g_nand" in cone and "g_xor" in cone and "ff0" in cone
        assert "tsv_out0__port" in cone and "po0__port" in cone

    def test_fanout_stops_at_flip_flop(self, tiny_netlist):
        cone = fanout_cone(tiny_netlist, "ff0")
        # ff0.Q feeds only the XOR (and onward); must not loop through D
        assert "g_xor" in cone
        assert "g_nand" not in cone

    def test_fanin_of_outbound_tsv(self, tiny_netlist):
        cone = fanin_cone(tiny_netlist, "tsv_out0__port")
        assert cone == frozenset({"g_nand", "a__port", "tsv_in0__port"})

    def test_fanin_of_ff_stops_at_sources(self, tiny_netlist):
        cone = fanin_cone(tiny_netlist, "ff0")
        assert "g_xor" in cone and "g_nand" in cone
        assert "ff0" not in cone  # self excluded

    def test_direction_errors(self, tiny_netlist):
        with pytest.raises(NetlistError):
            fanout_cone(tiny_netlist, "po0__port")  # output port
        with pytest.raises(NetlistError):
            fanin_cone(tiny_netlist, "a__port")  # input port
        with pytest.raises(NetlistError):
            fanout_cone(tiny_netlist, "ghost")

    def test_cones_overlap_helper(self):
        assert cones_overlap({"a", "b"}, {"b", "c"})
        assert not cones_overlap({"a"}, {"b"})
        assert not cones_overlap(set(), {"b"})

    def test_cone_locality_in_clustered_die(self, medium_die):
        """Clustering keeps cones well below whole-die size."""
        gates = medium_die.gate_count
        for port in medium_die.inbound_tsvs()[:10]:
            cone = fanout_cone(medium_die, port.name)
            assert len(cone) < gates * 0.6
