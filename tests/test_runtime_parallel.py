"""Tests for the deterministic parallel map and the instrumentation."""

import random
from dataclasses import replace

from repro.core.config import Scenario, WcmConfig
from repro.core.flow import run_wcm_flow
from repro.experiments import run_table3
from repro.experiments.common import SCALES
from repro.runtime import instrument
from repro.runtime.parallel import cell_seed, parallel_map

B11_ONLY = replace(SCALES["smoke"], circuits=("b11",))


def _square(value):
    return value * value


def _draw(_cell):
    return random.random()


class TestParallelMap:
    def test_order_preserved(self):
        cells = list(range(12))
        assert parallel_map(_square, cells, jobs=1) == \
            parallel_map(_square, cells, jobs=3) == \
            [v * v for v in cells]

    def test_per_cell_seeding_matches_serial(self):
        serial = parallel_map(_draw, range(6), jobs=1, seed=7)
        parallel = parallel_map(_draw, range(6), jobs=2, seed=7)
        assert serial == parallel
        # distinct deterministic stream per cell, and per root seed
        assert len(set(serial)) == len(serial)
        assert parallel_map(_draw, range(6), jobs=1, seed=8) != serial

    def test_cell_seed_is_stable(self):
        assert cell_seed(2019, 3) == cell_seed(2019, 3)
        assert cell_seed(2019, 3) != cell_seed(2019, 4)
        assert cell_seed(2019, 3) != cell_seed(2020, 3)

    def test_single_cell_stays_serial(self):
        assert parallel_map(_square, [5], jobs=8) == [25]


class TestParallelDrivers:
    def test_table3_parallel_equals_serial(self, monkeypatch):
        import repro.experiments.common as common

        # Empty the in-process memo first, so forked workers recompute
        # from scratch instead of inheriting earlier tests' results.
        monkeypatch.setattr(common, "_RUNS", {})
        parallel = run_table3(B11_ONLY, jobs=2).render()
        serial = run_table3(B11_ONLY, jobs=1).render()
        assert parallel == serial


class TestInstrumentation:
    def test_noop_without_collector(self):
        with instrument.phase("test.phase"):
            pass
        instrument.count("test.counter", 3)
        assert instrument.active_report() is None

    def test_collects_flow_phases_and_counters(self, small_problem):
        with instrument.collect() as report:
            run_wcm_flow(small_problem,
                         WcmConfig.ours(Scenario.area_optimized()))
        assert report.phases["flow.graph"].calls == 2  # both TSV kinds
        assert report.phases["flow.partition"].calls == 2
        assert "flow.adoption" in report.phases
        assert report.counters.get("clique.merges", 0) >= 0
        assert "flow.eco_rounds" in report.counters
        rendered = report.render("unit test")
        assert "flow.graph" in rendered and "unit test" in rendered

    def test_merge_and_payload(self):
        first = instrument.RunReport()
        first.add_phase("a", 1.0)
        first.add_count("n", 2)
        second = instrument.RunReport()
        second.add_phase("a", 0.5)
        second.add_count("n", 1)
        first.merge(second)
        assert first.phases["a"].calls == 2
        assert abs(first.phases["a"].seconds - 1.5) < 1e-9
        assert first.counters["n"] == 3
        payload = first.to_payload()
        assert payload["counters"]["n"] == 3

    def test_nested_collectors_are_scoped(self):
        with instrument.collect() as outer:
            instrument.count("outer.only")
            with instrument.collect() as inner:
                instrument.count("inner.only")
        assert "inner.only" in inner.counters
        assert "inner.only" not in outer.counters
        assert "outer.only" in outer.counters
