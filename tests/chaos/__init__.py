"""Chaos-injection suite: the supervised runtime vs. real failures."""
