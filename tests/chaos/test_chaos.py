"""End-to-end chaos validation on a real driver sweep.

Injects worker crashes, cell hangs, malformed netlists and cache
corruption into a ``--jobs 4`` Table III sweep over the four b11 dies
and asserts the contract from DESIGN.md: the sweep completes, exactly
the injured cells come back failed, the CLI exits non-zero, and every
*surviving* cell is byte-identical to a clean serial run.
"""

import json
from dataclasses import replace

import pytest

from repro import cli
from repro.experiments import run_table3
from repro.experiments.common import SCALES
from repro.runtime import configure, instrument
from repro.runtime.chaos import ChaosPlan, ChaosSpec, corrupt_cache_entry
from repro.runtime.config import current_config

B11_ONLY = replace(SCALES["smoke"], circuits=("b11",))

#: generous per-cell budget (a clean b11 cell takes well under 1s);
#: the injected hang sleeps far past it and must be killed
TIMEOUT_S = 10.0


@pytest.fixture(autouse=True)
def _fresh_memos(monkeypatch):
    """Empty the in-process run memo so forked workers recompute from
    scratch instead of inheriting earlier tests' results."""
    import repro.experiments.common as common

    monkeypatch.setattr(common, "_RUNS", {})
    yield


def _clean_serial():
    return run_table3(B11_ONLY, jobs=1)


class TestInjectedFailures:
    def test_crash_and_hang_in_jobs4_sweep(self):
        clean = _clean_serial()
        assert not clean.failures

        plan = ChaosPlan(
            cells={1: ChaosSpec("crash", attempts=99),
                   2: ChaosSpec("hang", attempts=99)},
            hang_seconds=600.0)
        configure(jobs=4, timeout_s=TIMEOUT_S, chaos=plan)
        injured = run_table3(B11_ONLY)

        # exactly the injured cells failed, with honest diagnoses
        assert set(injured.failures) == {("b11", 1), ("b11", 2)}
        assert "crashed" in injured.failures[("b11", 1)]
        assert "wall-clock" in injured.failures[("b11", 2)]

        # every surviving cell is byte-identical to the clean run
        assert set(injured.cells) == {("b11", 0), ("b11", 3)}
        for key in injured.cells:
            assert injured.cells[key] == clean.cells[key]

        # and the rendered table says so, loudly
        rendered = injured.render()
        assert "FAILED" in rendered
        assert "b11_d1" in rendered and "b11_d2" in rendered

    def test_netlist_chaos_is_a_failed_cell(self):
        plan = ChaosPlan(cells={0: ChaosSpec("netlist", attempts=99)})
        configure(jobs=2, chaos=plan)
        result = run_table3(B11_ONLY)
        assert set(result.failures) == {("b11", 0)}
        assert "NetlistError" in result.failures[("b11", 0)]

    def test_injured_then_retried_cell_matches_clean(self):
        clean = _clean_serial()
        plan = ChaosPlan(cells={3: ChaosSpec("crash", attempts=1)})
        configure(jobs=2, retries=1, chaos=plan)
        healed = run_table3(B11_ONLY)
        assert not healed.failures
        assert healed.cells == clean.cells


class TestCacheCorruption:
    def test_corrupt_entries_are_quarantined_and_recomputed(
            self, tmp_path):
        configure(cache_dir=str(tmp_path))
        clean = _clean_serial().render()

        # one unparsable entry, one valid-JSON-wrong-shape entry
        corrupt_cache_entry(tmp_path, nth=0, mode="truncate")
        corrupt_cache_entry(tmp_path, nth=1, mode="misshape")

        again = _clean_serial().render()
        assert again == clean

        quarantined = list((tmp_path / "quarantine").glob("*.json"))
        assert len(quarantined) == 2


class TestCheckpointResume:
    def test_resume_recomputes_only_the_injured_cell(self, tmp_path):
        clean = _clean_serial()

        plan = ChaosPlan(cells={1: ChaosSpec("crash", attempts=99)})
        configure(jobs=2, checkpoint_dir=str(tmp_path), chaos=plan)
        first = run_table3(B11_ONLY)
        assert set(first.failures) == {("b11", 1)}

        # "fix the bug" (drop the chaos) and rerun: the three completed
        # cells come back from the journal, only die 1 is recomputed
        current_config().chaos = None
        current_config().jobs = 1
        with instrument.collect() as report:
            second = run_table3(B11_ONLY)
        assert not second.failures
        assert second.cells == clean.cells
        assert report.counters["supervisor.checkpoint_restored"] == 3
        assert report.counters["supervisor.cells"] == 1


class TestCliExitCodes:
    def test_cli_exits_nonzero_and_renders_failures(
            self, monkeypatch, capsys):
        import repro.experiments.common as common

        monkeypatch.setitem(common.SCALES, "smoke", B11_ONLY)
        monkeypatch.setenv(
            "REPRO_CHAOS",
            json.dumps({"cells": {"0": {"action": "raise"}}}))
        code = cli.main(["table3", "--scale", "smoke", "--jobs", "2"])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAILED" in captured.out
        assert "cell(s) failed" in captured.err

    def test_cli_strict_aborts_with_exit_2(self, monkeypatch, capsys):
        import repro.experiments.common as common

        monkeypatch.setitem(common.SCALES, "smoke", B11_ONLY)
        monkeypatch.setenv(
            "REPRO_CHAOS",
            json.dumps({"cells": {"0": {"action": "raise",
                                        "attempts": 99}}}))
        code = cli.main(["table3", "--scale", "smoke", "--jobs", "2",
                         "--strict"])
        captured = capsys.readouterr()
        assert code == 2
        assert "sweep aborted" in captured.err


class TestChaosWithTracing:
    """Events must survive injected crashes and timeout kills: the
    per-line flush contract of the trace sink, end to end."""

    def test_events_flushed_on_crash_and_timeout(self, tmp_path):
        from repro.runtime import trace

        plan = ChaosPlan(
            cells={1: ChaosSpec("crash", attempts=99),
                   2: ChaosSpec("hang", attempts=99)},
            hang_seconds=600.0)
        configure(jobs=4, timeout_s=TIMEOUT_S, chaos=plan,
                  trace_dir=str(tmp_path))
        injured = run_table3(B11_ONLY)
        trace.stop()
        assert set(injured.failures) == {("b11", 1), ("b11", 2)}

        events = list(trace.read_events(tmp_path))
        assert events, "no events survived the injured sweep"

        # the supervisor recorded both failure modes in the main log
        points = {}
        for record in events:
            if record["ev"] == "point":
                points.setdefault(record["name"], []).append(
                    record.get("attrs", {}))
        assert any(a.get("index") == 1
                   for a in points.get("supervisor.crash", []))
        assert any(a.get("index") == 2
                   for a in points.get("supervisor.timeout", []))

        # killed workers still left their span_start lines on disk:
        # the crashed cell 1 and the hung cell 2 both opened a span
        # in a worker log before dying
        worker_logs = list(tmp_path.glob("events-w*.jsonl"))
        assert worker_logs, "worker processes wrote no event logs"
        injured_starts = {
            record["attrs"]["index"]
            for record in events
            if record["ev"] == "span_start" and record["name"] == "cell"
            and record.get("attrs", {}).get("index") in (1, 2)}
        assert injured_starts == {1, 2}

        # the chaos injections themselves are on the record
        chaos_actions = {a.get("action")
                         for a in points.get("chaos.injected", [])}
        assert {"crash", "hang"} <= chaos_actions
