"""Tests for structural Verilog writing and re-reading."""

import pytest

from repro.netlist.verilog import read_verilog, write_verilog
from repro.util.errors import NetlistError


class TestRoundTrip:
    def test_tiny_roundtrip_preserves_structure(self, tiny_netlist):
        text = write_verilog(tiny_netlist)
        back = read_verilog(text)
        assert back.stats() == tiny_netlist.stats()
        # connectivity preserved for a sampled instance
        original = tiny_netlist.instance("g_xor").connections
        restored = back.instance("g_xor").connections
        assert original == restored

    def test_port_kinds_survive(self, tiny_netlist):
        back = read_verilog(write_verilog(tiny_netlist))
        assert len(back.inbound_tsvs()) == 1
        assert len(back.outbound_tsvs()) == 1
        assert back.port("tsv_in0__port").kind.value == "tsv_inbound"

    def test_generated_die_roundtrip(self, small_die):
        back = read_verilog(write_verilog(small_die))
        assert back.stats() == small_die.stats()

    def test_deterministic_output(self, tiny_netlist):
        assert write_verilog(tiny_netlist) == write_verilog(tiny_netlist)

    def test_module_header_contains_ports(self, tiny_netlist):
        text = write_verilog(tiny_netlist)
        header = text.split(");")[0]
        for port in tiny_netlist.ports:
            assert port in header

    def test_read_garbage_raises(self):
        with pytest.raises(NetlistError):
            read_verilog("this is not verilog")

    def test_unknown_cells_tolerated(self):
        text = """
module m (
    a, z
);
  input a;  // kind: primary_input
  output z;  // kind: primary_output
  wire n;
  MYSTERY_MACRO u0 (.A(a), .Z(n));
  INV_X1 g (.A(a), .ZN(z));
endmodule
"""
        netlist = read_verilog(text)
        assert "g" in netlist.instances
        assert "u0" not in netlist.instances
