"""Tests for the netlist data model and its structural invariants."""

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.core import Netlist, Pin, PortKind
from repro.netlist.library import default_library
from repro.netlist.validate import validate_netlist
from repro.util.errors import NetlistError


def build_pair():
    builder = NetlistBuilder("t")
    a = builder.add_input("a")
    b = builder.add_input("b")
    out = builder.add_gate("AND2_X1", [a, b], name="g0")
    builder.add_output("po", out)
    return builder


class TestConstruction:
    def test_duplicate_net_rejected(self):
        netlist = Netlist("x", default_library())
        netlist.add_net("n")
        with pytest.raises(NetlistError):
            netlist.add_net("n")

    def test_duplicate_instance_rejected(self):
        netlist = Netlist("x", default_library())
        netlist.add_instance("g", "INV_X1")
        with pytest.raises(NetlistError):
            netlist.add_instance("g", "INV_X1")

    def test_multiple_drivers_rejected(self):
        netlist = Netlist("x", default_library())
        netlist.add_instance("g0", "INV_X1")
        netlist.add_instance("g1", "INV_X1")
        netlist.connect("g0", "ZN", "n")
        with pytest.raises(NetlistError):
            netlist.connect("g1", "ZN", "n")

    def test_port_and_instance_driver_conflict(self):
        netlist = Netlist("x", default_library())
        netlist.add_instance("g0", "INV_X1")
        netlist.connect("g0", "ZN", "n")
        with pytest.raises(NetlistError):
            netlist.add_port("p", PortKind.PRIMARY_INPUT, net="n")

    def test_double_pin_connection_rejected(self):
        builder = build_pair()
        with pytest.raises(NetlistError):
            builder.netlist.connect("g0", "A1", "other")

    def test_unknown_lookups_raise(self):
        netlist = Netlist("x", default_library())
        with pytest.raises(NetlistError):
            netlist.instance("nope")
        with pytest.raises(NetlistError):
            netlist.net("nope")
        with pytest.raises(NetlistError):
            netlist.port("nope")


class TestViews:
    def test_stats_and_views(self, tiny_netlist):
        stats = tiny_netlist.stats()
        assert stats["gates"] == 3
        assert stats["flip_flops"] == 1
        assert stats["inbound_tsvs"] == 1
        assert stats["outbound_tsvs"] == 1
        assert tiny_netlist.tsv_count == 2
        assert [f.name for f in tiny_netlist.scan_flip_flops()] == ["ff0"]

    def test_sink_cap_sums_pin_caps(self, tiny_netlist):
        lib = tiny_netlist.library
        # n1 ("n_0") drives XOR.A and the outbound TSV port
        net = tiny_netlist.instance("g_nand").output_net()
        expected = lib.get("XOR2_X1").input_cap("A")
        assert tiny_netlist.sink_cap_ff(net) == pytest.approx(expected)

    def test_location_of_unknown_raises(self, tiny_netlist):
        with pytest.raises(NetlistError):
            tiny_netlist.location_of("ghost")


class TestMutation:
    def test_retarget_sink_moves_connection(self):
        builder = build_pair()
        netlist = builder.netlist
        new_net = netlist.add_net("n_new")
        netlist.add_instance("drv", "BUF_X1")
        netlist.connect("drv", "A", "a")
        netlist.connect("drv", "Z", "n_new")
        sink = Pin("instance", "g0", "A2")
        netlist.retarget_sink(sink, "n_new")
        assert netlist.instance("g0").connections["A2"] == "n_new"
        assert sink not in netlist.net("b").sinks
        assert sink in netlist.net("n_new").sinks

    def test_disconnect_pin(self):
        builder = build_pair()
        netlist = builder.netlist
        netlist.disconnect_pin("g0", "A1")
        assert "A1" not in netlist.instance("g0").connections
        assert not any(s.owner_name == "g0" and s.pin_name == "A1"
                       for s in netlist.net("a").sinks)

    def test_clone_is_deep_for_connectivity(self, tiny_netlist):
        clone = tiny_netlist.clone("copy")
        clone.disconnect_pin("g_inv", "A")
        assert "A" in tiny_netlist.instance("g_inv").connections
        assert tiny_netlist.stats()["nets"] == clone.stats()["nets"]


class TestValidation:
    def test_valid_netlist_passes(self, tiny_netlist):
        assert validate_netlist(tiny_netlist) == []

    def test_unconnected_input_pin_fails(self):
        netlist = Netlist("x", default_library())
        netlist.add_instance("g", "INV_X1")
        netlist.connect("g", "ZN", "out")
        netlist.add_port("po", PortKind.PRIMARY_OUTPUT, net="out")
        with pytest.raises(NetlistError):
            validate_netlist(netlist)

    def test_undriven_net_fails_unless_allowed(self):
        builder = build_pair()
        netlist = builder.netlist
        netlist.add_net("floating")
        netlist.connect("g0", "Z", "out2") if False else None
        netlist.add_instance("g1", "INV_X1")
        netlist.connect("g1", "A", "floating")
        netlist.connect("g1", "ZN", "n1")
        netlist.add_port("po2", PortKind.PRIMARY_OUTPUT, net="n1")
        with pytest.raises(NetlistError):
            validate_netlist(netlist)
        assert validate_netlist(netlist, allow_undriven_nets=True) is not None

    def test_generated_die_validates(self, small_die):
        warnings = validate_netlist(small_die)
        assert isinstance(warnings, list)
