"""Property tests for the topology families (DESIGN.md §14).

Pins the structural contract of :mod:`repro.bench.families`: closed-form
cluster plans, exact element counts, topology-respecting cross-cluster
wiring, hard depth and TSV fan-out bounds, and byte-identical
determinism across seeds-of-chaos (``PYTHONHASHSEED``, worker-process
fan-out).
"""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.families import (
    CELL_MIXES,
    FAMILIES,
    FamilySpec,
    family_die_specs,
    generate_family,
    generate_family_die,
    netlist_fingerprint,
    plan_family,
)
from repro.bench.stack import generate_family_stack
from repro.netlist.topology import combinational_levels
from repro.netlist.validate import validate_netlist
from repro.runtime.parallel import parallel_map
from repro.util.errors import ReproError
from repro.verify.instances import InstanceSpec


# ---------------------------------------------------------------------------
# Closed-form plans
# ---------------------------------------------------------------------------
class TestPlans:
    @given(st.integers(min_value=1, max_value=120))
    def test_grid_closed_form(self, clusters):
        plan = plan_family("grid", clusters)
        dims = dict(plan.shape)
        rows, cols = dims["rows"], dims["cols"]
        assert plan.clusters == rows * cols <= clusters
        assert len(plan.edges) == rows * (cols - 1) + cols * (rows - 1)

    @given(st.integers(min_value=1, max_value=120))
    def test_chain_closed_form(self, clusters):
        plan = plan_family("chain", clusters)
        assert plan.clusters == clusters
        assert plan.edges == tuple((i, i + 1)
                                   for i in range(clusters - 1))

    @given(st.integers(min_value=3, max_value=120))
    def test_ring_closed_form(self, clusters):
        plan = plan_family("ring", clusters)
        assert len(plan.edges) == clusters
        degree = [0] * clusters
        for a, b in plan.edges:
            degree[a] += 1
            degree[b] += 1
        assert all(d == 2 for d in degree)

    def test_ring_degenerates_to_chain(self):
        assert plan_family("ring", 2).edges == ((0, 1),)
        assert plan_family("ring", 1).edges == ()

    @given(st.integers(min_value=1, max_value=120))
    def test_star_closed_form(self, clusters):
        plan = plan_family("star", clusters)
        assert plan.edges == tuple((0, i) for i in range(1, clusters))
        assert all(a == 0 for a, _ in plan.edges)

    @given(st.integers(min_value=1, max_value=300))
    def test_htree_closed_form(self, clusters):
        plan = plan_family("htree", clusters)
        depth = dict(plan.shape)["depth"]
        assert plan.clusters == 2 ** (depth + 1) - 1 <= clusters
        # A deeper complete tree must not have fit the request.
        assert 2 ** (depth + 2) - 1 > clusters
        assert len(plan.edges) == plan.clusters - 1

    @given(st.integers(min_value=1, max_value=120))
    def test_soc_connected(self, clusters):
        plan = plan_family("soc", clusters)
        assert plan.clusters <= clusters
        neighbors = plan.neighbors()
        seen, frontier = {0}, [0]
        while frontier:
            for other in neighbors[frontier.pop()]:
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        assert seen == set(range(plan.clusters))

    @given(st.sampled_from(FAMILIES),
           st.integers(min_value=1, max_value=120))
    def test_edges_canonical(self, family, clusters):
        plan = plan_family(family, clusters)
        assert list(plan.edges) == sorted(plan.edges)
        assert all(a < b for a, b in plan.edges)
        assert all(0 <= a and b < plan.clusters for a, b in plan.edges)

    def test_unknown_family_raises(self):
        with pytest.raises(ReproError):
            plan_family("torus", 9)
        with pytest.raises(ReproError):
            generate_family("torus")


# ---------------------------------------------------------------------------
# Structural invariants of generated instances
# ---------------------------------------------------------------------------
def _specs():
    return st.builds(
        FamilySpec,
        gates=st.integers(min_value=20, max_value=160),
        ffs=st.integers(min_value=2, max_value=8),
        tsv_in=st.integers(min_value=0, max_value=6),
        tsv_out=st.integers(min_value=0, max_value=6),
        cell_mix=st.sampled_from(sorted(CELL_MIXES)),
    )


class TestStructure:
    @settings(max_examples=30, deadline=None)
    @given(family=st.sampled_from(FAMILIES), spec=_specs(),
           seed=st.integers(min_value=0, max_value=2**16))
    def test_invariants(self, family, spec, seed):
        instance = generate_family(family, spec, seed=seed)
        netlist = instance.netlist

        # Exact counts.
        stats = netlist.stats()
        assert stats["gates"] == spec.gates
        assert stats["scan_flip_flops"] == spec.ffs
        assert stats["inbound_tsvs"] == spec.tsv_in
        assert stats["outbound_tsvs"] == spec.tsv_out

        # Well-formed and acyclic (combinational_levels raises on a
        # cycle); every net driven.
        validate_netlist(netlist)
        levels = combinational_levels(netlist)
        assert levels
        undriven = [n.name for n in netlist.nets.values()
                    if n.driver is None]
        assert undriven == []

        # Hard depth bound on the generator's own level map.
        assert max(instance.levels.values()) <= spec.max_depth

        # Cross-cluster wires only along topology edges, and every
        # planned edge carries at least one wire.
        assert instance.realized_edges() == set(instance.plan.edges)

        # Inbound-TSV fan-out never exceeds the hub cap (non-hub TSVs
        # have the tighter tsv_max_fanout, hubs hub_fanout).
        for port in netlist.inbound_tsvs():
            net = netlist.net(port.net)
            assert len(net.sinks) <= spec.hub_fanout

    @settings(max_examples=10, deadline=None)
    @given(family=st.sampled_from(FAMILIES),
           seed=st.integers(min_value=0, max_value=2**16))
    def test_rent_style_cross_probability(self, family, seed):
        spec = FamilySpec(gates=80, ffs=4, rent_exponent=0.6)
        # Rent override is active and bounded.
        assert 0.0 < spec.cross_probability(24) <= 0.5
        instance = generate_family(family, spec, seed=seed)
        assert instance.realized_edges() == set(instance.plan.edges)

    def test_spec_validation(self):
        with pytest.raises(ReproError):
            FamilySpec(gates=0)
        with pytest.raises(ReproError):
            FamilySpec(ffs=0)
        with pytest.raises(ReproError):
            FamilySpec(tsv_in=-1)
        with pytest.raises(ReproError):
            FamilySpec(cell_mix="exotic")
        with pytest.raises(ReproError):
            FamilySpec(max_fanout=8, hub_fanout=4)


class TestDensities:
    @settings(max_examples=20, deadline=None)
    @given(gates=st.integers(min_value=100, max_value=20000),
           ffs_per_kgate=st.floats(min_value=5.0, max_value=120.0),
           tsvs_per_kgate=st.floats(min_value=0.0, max_value=120.0))
    def test_from_density_within_one_count(self, gates, ffs_per_kgate,
                                           tsvs_per_kgate):
        spec = FamilySpec.from_density(gates,
                                       ffs_per_kgate=ffs_per_kgate,
                                       tsvs_per_kgate=tsvs_per_kgate)
        assert abs(spec.ffs - gates * ffs_per_kgate / 1000.0) <= 1.0
        tsvs = spec.tsv_in + spec.tsv_out
        assert abs(tsvs - gates * tsvs_per_kgate / 1000.0) <= 1.0
        assert abs(spec.tsv_in - spec.tsv_out) <= 1

    def test_cell_mix_skews_distribution(self):
        def mix_of(cell_mix):
            netlist = generate_family_die(
                "grid", FamilySpec(gates=400, ffs=8, cell_mix=cell_mix),
                seed=3)
            return [i.cell.name for i in netlist.instances.values()
                    if not i.is_sequential]

        nand_cells = set(mix_of("nand"))
        assert nand_cells <= {c for c, _, _ in CELL_MIXES["nand"]}
        xor_cells = mix_of("xor")
        xor_fraction = (sum(1 for c in xor_cells
                            if c in ("XOR2_X1", "XNOR2_X1"))
                        / len(xor_cells))
        assert 0.36 * 0.5 < xor_fraction < 0.36 * 1.5
        assert "XOR2_X1" not in nand_cells


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------
def _fingerprint_cell(cell):
    """Module-level so parallel_map worker processes can import it."""
    family, seed = cell
    return netlist_fingerprint(generate_family_die(
        family, FamilySpec(gates=60, ffs=4, tsv_in=2, tsv_out=2),
        seed=seed))


_HASHSEED_SCRIPT = """\
from repro.bench.families import (FAMILIES, FamilySpec,
                                  generate_family_die,
                                  netlist_fingerprint)
spec = FamilySpec(gates=48, ffs=3, tsv_in=2, tsv_out=2)
for family in FAMILIES:
    print(family,
          netlist_fingerprint(generate_family_die(family, spec, seed=11)))
"""


class TestDeterminism:
    @settings(max_examples=12, deadline=None)
    @given(family=st.sampled_from(FAMILIES), spec=_specs(),
           seed=st.integers(min_value=0, max_value=2**16))
    def test_same_spec_same_bytes(self, family, spec, seed):
        first = netlist_fingerprint(
            generate_family_die(family, spec, seed=seed))
        second = netlist_fingerprint(
            generate_family_die(family, spec, seed=seed))
        assert first == second
        other = netlist_fingerprint(
            generate_family_die(family, spec, seed=seed + 1))
        assert other != first

    def test_jobs_do_not_change_bytes(self):
        cells = [(family, 5) for family in FAMILIES]
        serial = parallel_map(_fingerprint_cell, cells, jobs=1)
        parallel = parallel_map(_fingerprint_cell, cells, jobs=2)
        assert serial == parallel

    @pytest.mark.parametrize("hashseed", ["0", "424242"])
    def test_hashseed_does_not_change_bytes(self, hashseed, tmp_path):
        """Fingerprints are identical under arbitrary PYTHONHASHSEED.

        The reference run uses this process (whatever its hash seed
        is); the subprocess pins a different one.
        """
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        out = subprocess.run([sys.executable, "-c", _HASHSEED_SCRIPT],
                             env=env, capture_output=True, text=True,
                             check=True).stdout
        spec = FamilySpec(gates=48, ffs=3, tsv_in=2, tsv_out=2)
        expected = {family: netlist_fingerprint(
            generate_family_die(family, spec, seed=11))
            for family in FAMILIES}
        got = dict(line.split() for line in out.splitlines())
        assert got == expected


# ---------------------------------------------------------------------------
# Stacks and verify-layer integration
# ---------------------------------------------------------------------------
class TestStacksAndSpecs:
    def test_family_stack_bonds_and_validates(self):
        spec = FamilySpec(gates=60, ffs=4, tsv_in=6, tsv_out=6)
        stack = generate_family_stack("ring", spec, seed=5, dies=3)
        assert len(stack.dies) == 3
        # validate_links already ran inside bond_stack; the bonding is
        # deterministic.
        again = generate_family_stack("ring", spec, seed=5, dies=3)
        assert ([netlist_fingerprint(d) for d in stack.dies]
                == [netlist_fingerprint(d) for d in again.dies])
        assert ([(l.source_die, l.source_port, l.target_die,
                  l.target_port) for l in stack.links]
                == [(l.source_die, l.source_port, l.target_die,
                     l.target_port) for l in again.links])

    def test_die_specs_preserve_totals(self):
        spec = FamilySpec(gates=60, ffs=4, tsv_in=8, tsv_out=8)
        for die_spec in family_die_specs(spec, dies=4):
            assert die_spec.tsv_in + die_spec.tsv_out == 16
            assert die_spec.gates == spec.gates

    def test_instance_spec_builds_families(self):
        spec = InstanceSpec(seed=13, gates=30, ffs=3, tsv_in=2,
                            tsv_out=2, family="star")
        netlist = spec.build_netlist()
        stats = netlist.stats()
        assert stats["gates"] == 30
        assert stats["scan_flip_flops"] == 3
        assert "star" in spec.slug()

    def test_instance_spec_fanout_cap(self):
        spec = InstanceSpec(seed=13, gates=40, ffs=3, tsv_in=2,
                            tsv_out=2, family="grid", fanout_cap=4)
        netlist = spec.build_netlist()
        assert netlist.stats()["gates"] == 40
        assert "fo4" in spec.slug()

    def test_instance_spec_rejects_unknown_family(self):
        with pytest.raises(ReproError):
            InstanceSpec(seed=1, family="torus").build_netlist()

    def test_old_repro_json_still_loads(self):
        spec = InstanceSpec(seed=7)
        payload = spec.to_json()
        # A pre-family repro has neither field; defaults must apply.
        import json

        data = json.loads(payload)
        del data["family"]
        del data["fanout_cap"]
        loaded = InstanceSpec.from_json(json.dumps(data))
        assert loaded.family == "itc99"
        assert loaded.fanout_cap is None
        assert loaded == spec
