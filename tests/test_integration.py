"""End-to-end integration tests across all subsystems."""

import pytest

from repro.atpg.engine import AtpgConfig, run_stuck_at_atpg
from repro.bench.generator import generate_die
from repro.bench.itc99 import die_profile
from repro.core.config import Scenario, WcmConfig
from repro.core.flow import run_wcm_flow
from repro.core.problem import build_problem, tight_clock_for
from repro.dft.scan import stitch_scan_chains
from repro.dft.testview import build_prebond_test_view
from repro.dft.wrapper import dedicated_plan, insert_wrappers
from repro.netlist.core import PortKind
from repro.netlist.validate import validate_netlist
from repro.place.placer import place_die
from repro.sta.timer import TimingAnalyzer, default_case
from repro.threed.partition import PartitionConfig, partition_into_stack


class TestFullFlowOnFreshDie:
    """The complete Fig.-6 pipeline on a die none of the fixtures use."""

    @pytest.fixture(scope="class")
    def flow(self):
        netlist = generate_die(die_profile("b11", 3), seed=77)
        problem = build_problem(netlist)
        clock = tight_clock_for(problem)
        tight = Scenario.performance_optimized(clock.period_ps)
        run = run_wcm_flow(problem.retime(clock), WcmConfig.ours(tight))
        return problem, run

    def test_wrapped_die_is_structurally_sound(self, flow):
        _problem, run = flow
        validate_netlist(run.wrapped_netlist, allow_undriven_nets=True)

    def test_all_tsvs_wrapped(self, flow):
        problem, run = flow
        run.plan.validate(problem.netlist)

    def test_no_timing_violation(self, flow):
        _problem, run = flow
        assert not run.timing_violation

    def test_scan_chain_covers_wrapper_cells(self, flow):
        _problem, run = flow
        wrapped = run.wrapped_netlist
        for ff in wrapped.scan_flip_flops():
            assert "SI" in ff.connections, f"{ff.name} not in a chain"

    def test_wrapping_raises_coverage(self, flow):
        """The whole point of wrapper cells: pre-bond coverage of the
        wrapped die beats the bare die."""
        problem, run = flow
        config = AtpgConfig(seed=5, block_width=128, max_random_blocks=6,
                            podem_fault_limit=300)
        bare = run_stuck_at_atpg(
            build_prebond_test_view(problem.netlist), config)
        wrapped = run_stuck_at_atpg(
            build_prebond_test_view(run.wrapped_netlist), config)
        assert wrapped.raw_coverage > bare.raw_coverage

    def test_test_mode_actually_decouples_tsvs(self, flow):
        """In test mode every inbound TSV's sinks see the wrapper value,
        not the floating TSV: flipping the TSV net must not change any
        observed value."""
        from repro.atpg.sim import CompiledCircuit
        from repro.util.rng import DeterministicRng

        _problem, run = flow
        view = build_prebond_test_view(run.wrapped_netlist)
        circuit = CompiledCircuit(view)
        rng = DeterministicRng(11)
        mask = (1 << 64) - 1
        words = [rng.getrandbits(64) for _ in range(circuit.input_count)]
        good = circuit.simulate(words, mask)
        for net in view.x_nets[:10]:
            nid = circuit.net_ids[net]
            changed = circuit.propagate_values(good, {nid: mask}, mask)
            assert not circuit.observation_diffs(good, changed), \
                f"floating TSV {net} leaks into an observation point"


class TestStackLevelFlow:
    def test_partition_then_wrap_each_die(self):
        flat = generate_die(die_profile("b11", 0), seed=13)
        stack, _assignment = partition_into_stack(
            flat, PartitionConfig(num_dies=2, seed=13))
        area = Scenario.area_optimized()
        for die in stack.dies:
            if die.tsv_count == 0 or not die.scan_flip_flops():
                continue
            problem = build_problem(die)
            run = run_wcm_flow(problem, WcmConfig.ours(area))
            run.plan.validate(die)
            assert run.additional_wrapper_cells <= die.tsv_count


class TestDualModeSignoff:
    def test_dedicated_reference_meets_its_own_tight_clock(self,
                                                           small_problem):
        clock = tight_clock_for(small_problem)
        wrapped = small_problem.dedicated_netlist
        analyzer = TimingAnalyzer(wrapped)
        for mode in (0, 1):
            result = analyzer.analyze(clock,
                                      case=default_case(wrapped, mode))
            assert not result.has_violation, f"mode {mode} violates"

    def test_functional_mode_excludes_test_paths(self, small_problem):
        clock = tight_clock_for(small_problem)
        wrapped = small_problem.dedicated_netlist
        analyzer = TimingAnalyzer(wrapped)
        functional = analyzer.analyze(clock,
                                      case=default_case(wrapped, 0))
        test = analyzer.analyze(clock, case=default_case(wrapped, 1))
        assert test.critical_path_ps >= functional.critical_path_ps


class TestDeterminismEndToEnd:
    def test_same_seed_same_plan(self):
        def one_run():
            netlist = generate_die(die_profile("b11", 0), seed=99)
            problem = build_problem(netlist)
            run = run_wcm_flow(problem,
                               WcmConfig.ours(Scenario.area_optimized()))
            return (run.reused_scan_ffs, run.additional_wrapper_cells,
                    sorted((g.kind.value, tuple(g.tsvs), g.reused_ff)
                           for g in run.plan.groups))

        assert one_run() == one_run()
