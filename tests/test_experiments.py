"""Tests for the experiment drivers (smoke scale)."""

import pytest

from repro.experiments import (
    prepare_die,
    resolve_scale,
    run_figure7,
    run_table1,
    run_table2,
    run_table3,
)
from repro.experiments.common import (
    SCALES,
    dies_for_scale,
    method_config,
    run_method,
    scale_banner,
)
from repro.util.errors import ConfigError

SMOKE = SCALES["smoke"]


class TestScaleResolution:
    def test_default_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert resolve_scale().name == "default"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert resolve_scale().name == "smoke"
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert resolve_scale().name == "full"

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigError):
            resolve_scale("enormous")

    def test_dies_for_scale(self):
        dies = dies_for_scale(SMOKE)
        assert ("b11", 0) in dies and ("b12", 3) in dies
        assert not any(c == "b18" for c, _d in dies)

    def test_banner_mentions_scale(self):
        assert "smoke" in scale_banner(SMOKE)


class TestPreparedDieCache:
    def test_cache_returns_same_object(self):
        a = prepare_die("b11", 0)
        b = prepare_die("b11", 0)
        assert a is b

    def test_scenarios_pairing(self):
        prepared = prepare_die("b11", 0)
        area, tight = prepared.scenarios()
        assert not area.is_timed and tight.is_timed
        assert prepared.problem_for(area) is prepared.problem_area
        assert prepared.problem_for(tight) is prepared.problem_tight

    def test_run_method_cached(self):
        prepared = prepare_die("b11", 0)
        area, _tight = prepared.scenarios()
        config = method_config("agrawal", area, SMOKE)
        assert run_method(prepared, config) is run_method(prepared, config)


class TestTable2:
    def test_counts_verified(self):
        result = run_table2(SMOKE)
        assert len(result.rows) == 8  # b11 + b12 dies
        rendered = result.render()
        assert "b11" in rendered and "Average" in rendered
        avg = result.averages()
        assert avg.gates > 0


class TestTable3:
    def test_shapes(self):
        result = run_table3(SMOKE)
        assert len(result.cells) == 8
        # headline shapes on the smoke set:
        ours_viol, total = result.violation_tally("ours_tight")
        assert ours_viol == 0
        agrawal_viol, _ = result.violation_tally("agrawal_tight")
        assert agrawal_viol > 0
        assert result.average("ours_area", "additional") <= \
            result.average("agrawal_area", "additional")
        assert "Table III" in result.render()


class TestFigure7:
    def test_positive_expansion(self):
        result = run_figure7(SMOKE)
        assert result.rows
        assert result.mean_increase_pct >= 0.0
        assert "Figure 7" in result.render()


@pytest.mark.slow
class TestTable1:
    def test_runs_and_renders(self):
        result = run_table1(SMOKE)
        assert len(result.rows) == 4
        assert "Table I" in result.render()


class TestOverhead:
    def test_overhead_ordering(self):
        from repro.experiments import run_overhead
        result = run_overhead(SMOKE)
        assert result.rows
        for row in result.rows.values():
            # reuse can only remove DFT area relative to dedicated [13]
            assert row.ours_overhead <= row.dedicated_overhead + 1e-9
            assert row.agrawal_overhead <= row.dedicated_overhead + 1e-9
        assert "overhead" in result.render()
