"""Tests for the ATPG engine and transition-fault flow."""

import pytest

from repro.atpg.engine import AtpgConfig, AtpgEngine, run_stuck_at_atpg, _patterns_to_words
from repro.atpg.transition import build_transition_faults, run_transition_atpg
from repro.dft.testview import build_prebond_test_view
from repro.netlist.builder import NetlistBuilder


def chain_view(depth=4):
    builder = NetlistBuilder("chain")
    current = builder.add_input("a")
    extra = builder.add_input("b")
    current = builder.add_gate("XOR2_X1", [current, extra])
    for _ in range(depth):
        current = builder.add_gate("INV_X1", [current])
    builder.add_output("po", current)
    return build_prebond_test_view(builder.finish())


class TestStuckAtEngine:
    def test_full_coverage_on_simple_chain(self):
        result = run_stuck_at_atpg(chain_view(), AtpgConfig(seed=1))
        assert result.coverage == 1.0
        assert result.pattern_count >= 2
        assert result.undetected == 0

    def test_deterministic(self, small_test_view):
        config = AtpgConfig(seed=77, block_width=64, max_random_blocks=4,
                            podem_fault_limit=50)
        a = run_stuck_at_atpg(small_test_view, config)
        b = run_stuck_at_atpg(small_test_view, config)
        assert a.detected == b.detected
        assert a.pattern_count == b.pattern_count
        assert a.patterns == b.patterns

    def test_counts_are_consistent(self, small_test_view):
        result = run_stuck_at_atpg(small_test_view, AtpgConfig(
            seed=3, block_width=64, max_random_blocks=6,
            podem_fault_limit=200))
        assert (result.detected + result.proven_untestable
                + result.undetected == result.total_faults)
        assert result.aborted <= result.undetected
        assert 0.0 <= result.coverage <= 1.0
        assert result.pattern_count == len(result.patterns)
        assert (result.random_patterns + result.deterministic_patterns
                == result.pattern_count)

    def test_patterns_actually_detect(self, small_test_view):
        """Replaying the final pattern set must detect every fault the
        engine claims (modulo PODEM-verified cubes it had dropped)."""
        engine = AtpgEngine(small_test_view, AtpgConfig(
            seed=3, block_width=64, max_random_blocks=6,
            podem_fault_limit=200))
        result = engine.run()
        circuit = engine.circuit
        words = _patterns_to_words(result.patterns, circuit.input_count)
        mask = (1 << len(result.patterns)) - 1
        good = circuit.simulate(words, mask)
        replay_detected = sum(
            1 for i in range(len(engine.fault_list.faults))
            if engine.dispatcher.detect_word(circuit, good, i, mask))
        assert replay_detected >= result.detected * 0.98

    def test_compaction_reduces_or_keeps_patterns(self, small_test_view):
        base = run_stuck_at_atpg(small_test_view, AtpgConfig(
            seed=3, block_width=64, max_random_blocks=6,
            podem_fault_limit=100))
        compact = run_stuck_at_atpg(small_test_view, AtpgConfig(
            seed=3, block_width=64, max_random_blocks=6,
            podem_fault_limit=100, compaction=True))
        assert compact.pattern_count <= base.pattern_count
        assert compact.detected == base.detected

    def test_fault_sampling_respected(self, small_test_view):
        result = run_stuck_at_atpg(small_test_view, AtpgConfig(
            seed=3, fault_sample=100, max_random_blocks=3,
            podem_fault_limit=20))
        assert result.total_faults == 100

    def test_more_effort_never_hurts(self, small_test_view):
        small = run_stuck_at_atpg(small_test_view, AtpgConfig(
            seed=3, block_width=32, max_random_blocks=2,
            podem_fault_limit=0))
        large = run_stuck_at_atpg(small_test_view, AtpgConfig(
            seed=3, block_width=128, max_random_blocks=10,
            podem_fault_limit=400))
        assert large.detected >= small.detected


class TestTransitionEngine:
    def test_universe_is_two_per_stem(self, small_test_view):
        faults = build_transition_faults(small_test_view)
        nets = {f.net for f in faults}
        assert len(faults) == 2 * len(nets)

    def test_chain_transition_coverage(self):
        result = run_transition_atpg(chain_view(), AtpgConfig(seed=1))
        assert result.coverage >= 0.9
        assert result.pattern_count > 0

    def test_deterministic(self, small_test_view):
        config = AtpgConfig(seed=9, block_width=64, max_random_blocks=3,
                            podem_fault_limit=40)
        a = run_transition_atpg(small_test_view, config)
        b = run_transition_atpg(small_test_view, config)
        assert (a.detected, a.pattern_count) == (b.detected, b.pattern_count)

    def test_needs_more_patterns_than_stuck_at(self, small_test_view):
        """Two-pattern tests are harder: per-fault detection probability
        is lower, so coverage at equal effort is no higher."""
        config = AtpgConfig(seed=9, block_width=64, max_random_blocks=4,
                            podem_fault_limit=0)
        stuck = run_stuck_at_atpg(small_test_view, config)
        transition = run_transition_atpg(small_test_view, config)
        assert transition.raw_coverage <= stuck.raw_coverage + 0.05


class TestAtpgConfigValidation:
    def test_defaults_are_valid(self):
        AtpgConfig()

    @pytest.mark.parametrize("field,value", [
        ("block_width", 0),
        ("block_width", -32),
        ("max_random_blocks", -1),
        ("stop_after_idle_blocks", -1),
        ("backtrack_limit", -5),
        ("podem_fault_limit", -1),
        ("fault_sample", 0),
        ("fault_sample", -100),
    ])
    def test_bad_field_raises_config_error(self, field, value):
        from repro.util.errors import ConfigError

        with pytest.raises(ConfigError, match=field):
            AtpgConfig(**{field: value})

    def test_none_sentinels_stay_valid(self):
        AtpgConfig(podem_fault_limit=None, fault_sample=None)
