"""Tests for the standard-cell library: logic functions, timing, caps."""

import pytest
from hypothesis import given, strategies as st

from repro.netlist.library import (
    DEFAULT_CAP_TH_FF,
    LOGIC_FUNCTIONS,
    CellType,
    CellPin,
    PinDirection,
    Library,
    default_library,
    evaluate_cell,
)
from repro.util.errors import LibraryError

LIB = default_library()

word = st.integers(min_value=0, max_value=(1 << 64) - 1)
MASK = (1 << 64) - 1


class TestLogicFunctions:
    @given(word, word)
    def test_nand_is_not_and(self, a, b):
        assert LOGIC_FUNCTIONS["nand"]([a, b], MASK) == \
            (~LOGIC_FUNCTIONS["and"]([a, b], MASK)) & MASK

    @given(word, word)
    def test_nor_is_not_or(self, a, b):
        assert LOGIC_FUNCTIONS["nor"]([a, b], MASK) == \
            (~LOGIC_FUNCTIONS["or"]([a, b], MASK)) & MASK

    @given(word)
    def test_inv_involution(self, a):
        inv = LOGIC_FUNCTIONS["inv"]
        assert inv([inv([a], MASK)], MASK) == a & MASK

    @given(word, word)
    def test_xor_xnor_complementary(self, a, b):
        x = LOGIC_FUNCTIONS["xor"]([a, b], MASK)
        xn = LOGIC_FUNCTIONS["xnor"]([a, b], MASK)
        assert x ^ xn == MASK

    @given(word, word, word)
    def test_mux_selects(self, a, b, s):
        out = LOGIC_FUNCTIONS["mux2"]([a, b, s], MASK)
        # where s=0 -> a; where s=1 -> b
        assert out & ~s & MASK == a & ~s & MASK
        assert out & s == b & s

    @given(word, word, word)
    def test_aoi21_definition(self, a1, a2, b):
        expected = ~((a1 & a2) | b) & MASK
        assert LOGIC_FUNCTIONS["aoi21"]([a1, a2, b], MASK) == expected

    @given(word, word, word)
    def test_oai21_definition(self, a1, a2, b):
        expected = ~((a1 | a2) & b) & MASK
        assert LOGIC_FUNCTIONS["oai21"]([a1, a2, b], MASK) == expected

    @given(word, word, word)
    def test_results_within_mask(self, a, b, c):
        for name, fn in LOGIC_FUNCTIONS.items():
            arity = {"buf": 1, "inv": 1, "mux2": 3, "aoi21": 3,
                     "oai21": 3}.get(name, 2)
            args = [a, b, c][:arity]
            assert 0 <= fn(args, MASK) <= MASK


class TestDefaultLibrary:
    def test_expected_cells_present(self):
        for name in ("INV_X1", "NAND2_X1", "XOR2_X1", "MUX2_X1",
                     "BUF_X2", "DFF_X1", "SDFF_X1"):
            assert name in LIB

    def test_unknown_cell_raises(self):
        with pytest.raises(LibraryError):
            LIB.get("NAND99_X9")

    def test_sdff_is_scan(self):
        sdff = LIB.get("SDFF_X1")
        assert sdff.is_sequential and sdff.is_scan
        assert {p.name for p in sdff.pins} == {"D", "SI", "SE", "CK", "Q"}

    def test_dff_not_scan(self):
        dff = LIB.get("DFF_X1")
        assert dff.is_sequential and not dff.is_scan

    def test_delay_monotone_in_load(self):
        nand = LIB.get("NAND2_X1")
        assert nand.delay_ps(10.0) < nand.delay_ps(40.0)
        assert nand.delay_ps(0.0) == nand.intrinsic_delay_ps

    def test_input_cap_lookup(self):
        nand = LIB.get("NAND2_X1")
        assert nand.input_cap("A1") > 0
        with pytest.raises(LibraryError):
            nand.input_cap("ZN")  # output pin

    def test_cap_th_is_buf_x2_limit(self):
        assert DEFAULT_CAP_TH_FF == LIB.get("BUF_X2").max_load_ff

    def test_evaluate_cell_rejects_sequential(self):
        with pytest.raises(LibraryError):
            evaluate_cell(LIB.get("SDFF_X1"), [1, 1], MASK)

    def test_evaluate_cell_combinational(self):
        out = evaluate_cell(LIB.get("NAND2_X1"), [MASK, MASK], MASK)
        assert out == 0

    def test_duplicate_cell_rejected(self):
        lib = Library(name="t")
        cell = LIB.get("INV_X1")
        lib.add(cell)
        with pytest.raises(LibraryError):
            lib.add(cell)

    def test_cell_with_duplicate_pins_rejected(self):
        with pytest.raises(LibraryError):
            CellType(
                name="BAD", function="and",
                pins=(CellPin("A", PinDirection.INPUT, 1.0),
                      CellPin("A", PinDirection.INPUT, 1.0),
                      CellPin("Z", PinDirection.OUTPUT)),
                intrinsic_delay_ps=1, drive_resistance=1,
                max_load_ff=10, area_um2=1,
            )

    def test_data_input_pins_exclude_clock_and_scan_enable(self):
        sdff = LIB.get("SDFF_X1")
        names = {p.name for p in sdff.data_input_pins}
        assert "CK" not in names and "SE" not in names
        assert "D" in names
