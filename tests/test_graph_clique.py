"""Tests for Algorithm 1 (graph construction) and Algorithm 2 (cliques)."""

import math

import pytest

from repro.core.clique import partition_cliques
from repro.core.config import Scenario, WcmConfig
from repro.core.graph import build_wcm_graph, effective_d_th
from repro.core.testability import OverlapTestabilityEstimator
from repro.core.timing_model import ReuseTimingModel
from repro.netlist.core import PortKind


@pytest.fixture(scope="module")
def area_graphs(medium_problem):
    config = WcmConfig.agrawal(Scenario.area_optimized())
    model = ReuseTimingModel(medium_problem, config)
    inbound = build_wcm_graph(medium_problem, PortKind.TSV_INBOUND,
                              medium_problem.scan_ffs, config, model)
    outbound = build_wcm_graph(medium_problem, PortKind.TSV_OUTBOUND,
                               medium_problem.scan_ffs, config, model)
    return config, model, inbound, outbound


class TestGraphConstruction:
    def test_nodes_partition_tsvs(self, area_graphs, medium_problem):
        _config, _model, inbound, _outbound = area_graphs
        tsv_nodes = [n for n in inbound.nodes if not inbound.is_ff[n]]
        assert (len(tsv_nodes) + len(inbound.excluded_tsvs)
                == len(medium_problem.inbound_tsvs))

    def test_no_ff_ff_edges(self, area_graphs):
        _config, _model, inbound, outbound = area_graphs
        for graph in (inbound, outbound):
            for node, neighbours in graph.adjacency.items():
                if graph.is_ff[node]:
                    assert not any(graph.is_ff[n] for n in neighbours)

    def test_adjacency_symmetric(self, area_graphs):
        _config, _model, inbound, _ = area_graphs
        for node, neighbours in inbound.adjacency.items():
            for other in neighbours:
                assert node in inbound.adjacency[other]

    def test_no_overlap_edges_for_baseline(self, area_graphs):
        _config, _model, inbound, outbound = area_graphs
        assert inbound.stats.overlap_edges == 0
        assert outbound.stats.overlap_edges == 0

    def test_edges_respect_cone_rule(self, area_graphs, medium_problem):
        """Every baseline edge joins non-overlapping (gate) cones."""
        _config, _model, inbound, _ = area_graphs
        cones = medium_problem.cones
        checked = 0
        for node, neighbours in inbound.adjacency.items():
            for other in neighbours:
                assert not cones.overlaps(node, other, PortKind.TSV_INBOUND)
                checked += 1
                if checked > 300:
                    return

    def test_overlap_expansion_adds_edges(self, medium_problem):
        area = Scenario.area_optimized()
        ours = WcmConfig.ours(area)
        model = ReuseTimingModel(medium_problem, ours)
        estimator = OverlapTestabilityEstimator(medium_problem, ours)
        expanded = build_wcm_graph(medium_problem, PortKind.TSV_INBOUND,
                                   medium_problem.scan_ffs, ours, model,
                                   estimator)
        baseline = build_wcm_graph(medium_problem, PortKind.TSV_INBOUND,
                                   medium_problem.scan_ffs,
                                   ours.without_overlap(), model)
        assert expanded.stats.edges >= baseline.stats.edges
        assert expanded.stats.overlap_edges \
            == expanded.stats.edges - baseline.stats.edges

    def test_d_th_reduces_edges(self, medium_scenarios):
        """d_th binds only under a timing constraint (area mode is
        unconstrained by definition)."""
        _area, tight, medium_problem = medium_scenarios
        area = tight
        wide = WcmConfig.ours(area, d_th_fraction=None).without_overlap()
        narrow = WcmConfig.ours(area, d_th_fraction=0.15).without_overlap()
        model_w = ReuseTimingModel(medium_problem, wide)
        model_n = ReuseTimingModel(medium_problem, narrow)
        g_wide = build_wcm_graph(medium_problem, PortKind.TSV_INBOUND,
                                 medium_problem.scan_ffs, wide, model_w)
        g_narrow = build_wcm_graph(medium_problem, PortKind.TSV_INBOUND,
                                   medium_problem.scan_ffs, narrow, model_n)
        assert g_narrow.stats.edges < g_wide.stats.edges
        assert g_narrow.stats.rejected_distance > 0

    def test_effective_d_th(self, medium_problem):
        explicit = WcmConfig.ours(Scenario.area_optimized(), d_th_um=42.0)
        assert effective_d_th(medium_problem, explicit) == 42.0
        fractional = WcmConfig.ours(Scenario.area_optimized(),
                                    d_th_fraction=0.5)
        value = effective_d_th(medium_problem, fractional)
        assert 0 < value < math.inf
        disabled = WcmConfig.agrawal(Scenario.area_optimized())
        assert math.isinf(effective_d_th(medium_problem, disabled))


class TestCliquePartitioning:
    def test_partition_covers_all_tsvs(self, area_graphs):
        _config, model, inbound, _ = area_graphs
        partition = partition_cliques(inbound, model)
        covered = [t for c in partition.cliques for t in c.tsvs]
        tsv_nodes = [n for n in inbound.nodes if not inbound.is_ff[n]]
        assert sorted(covered) == sorted(tsv_nodes)

    def test_no_clique_exceeds_group_size(self, area_graphs):
        config, model, inbound, _ = area_graphs
        partition = partition_cliques(inbound, model)
        assert all(len(c.tsvs) <= config.max_group_size
                   for c in partition.cliques)

    def test_cliques_are_cliques(self, area_graphs):
        """Every pair inside a clique must be an original edge."""
        _config, model, inbound, _ = area_graphs
        partition = partition_cliques(inbound, model)
        for clique in partition.cliques:
            nodes = list(clique.tsvs) + ([clique.ff] if clique.ff else [])
            for i, a in enumerate(nodes):
                for b in nodes[i + 1:]:
                    assert b in inbound.adjacency[a], \
                        f"{a}-{b} not an edge but share a clique"

    def test_each_ff_in_at_most_one_clique(self, area_graphs):
        _config, model, inbound, _ = area_graphs
        partition = partition_cliques(inbound, model)
        ffs = [c.ff for c in partition.cliques if c.ff]
        assert len(ffs) == len(set(ffs))

    def test_merging_reduces_clique_count(self, area_graphs):
        _config, model, inbound, _ = area_graphs
        partition = partition_cliques(inbound, model)
        tsv_nodes = sum(1 for n in inbound.nodes if not inbound.is_ff[n])
        groups = sum(1 for c in partition.cliques if c.tsvs)
        assert groups < tsv_nodes  # some sharing must happen
        assert partition.merges > 0
