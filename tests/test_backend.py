"""Kernel backend selection plumbing and cross-backend agreement.

The backend choice (``python`` vs ``numpy``) must be byte-invisible in
every result; these tests pin the selection precedence, the clean
failure modes when numpy is absent, and — via a hypothesis sweep over
generated verification instances — that both backends agree on ATPG,
STA and graph construction outputs.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg.engine import AtpgConfig, run_stuck_at_atpg
from repro.cli import main
from repro.core.graph import build_wcm_graph
from repro.dft.testview import build_prebond_test_view
from repro.netlist.core import PortKind
from repro.runtime import backend as backend_mod
from repro.runtime.backend import numpy_available
from repro.runtime.config import apply_config, configure, current_config
from repro.sta.constraints import ClockConstraint
from repro.sta.timer import TimingContext
from repro.util.errors import ConfigError
from repro.verify.fuzz import spec_for_iteration

_CLOCK = ClockConstraint(period_ps=800.0)


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    backend_mod._NUMPY_OK = None  # drop any monkeypatched probe result
    configure(backend="python")


def _hide_numpy(monkeypatch):
    """Make the process act as if numpy were not installed."""
    monkeypatch.setattr(backend_mod, "_NUMPY_OK", False)


class TestSelection:
    def test_default_is_python(self):
        assert current_config().backend == "python"
        assert not backend_mod.use_numpy()

    def test_explicit_argument(self):
        if not numpy_available():
            pytest.skip("numpy not installed")
        configure(backend="numpy")
        assert backend_mod.active_backend() == "numpy"
        assert backend_mod.use_numpy()

    def test_env_fallback(self, monkeypatch):
        if not numpy_available():
            pytest.skip("numpy not installed")
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        configure()
        assert current_config().backend == "numpy"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        configure(backend="python")
        assert current_config().backend == "python"

    def test_name_is_normalized(self):
        assert backend_mod.validate_backend("  PYTHON ") == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            configure(backend="fortran")

    def test_numpy_backend_requires_numpy(self, monkeypatch):
        _hide_numpy(monkeypatch)
        with pytest.raises(ConfigError, match="requires the numpy"):
            configure(backend="numpy")

    def test_workers_inherit_backend(self):
        if not numpy_available():
            pytest.skip("numpy not installed")
        parent = configure(backend="numpy")
        snapshot = dataclasses.replace(parent)
        configure(backend="python")
        apply_config(snapshot)  # what a worker initializer does
        assert current_config().backend == "numpy"


class TestCliBackend:
    def test_bad_backend_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--backend", "fortran", "die", "b11", "0"])
        assert excinfo.value.code == 2

    def test_numpy_backend_without_numpy_exits_2(self, monkeypatch):
        _hide_numpy(monkeypatch)
        with pytest.raises(SystemExit) as excinfo:
            main(["--backend", "numpy", "die", "b11", "0"])
        assert excinfo.value.code == 2

    def test_numpy_backend_runs(self, capsys):
        if not numpy_available():
            pytest.skip("numpy not installed")
        assert main(["--backend", "numpy", "die", "b11", "0"]) == 0
        assert "b11_die0" in capsys.readouterr().out


def _kernel_products(spec):
    """The three kernel outputs of one spec under the active backend."""
    problem = spec.build_problem()
    view = build_prebond_test_view(problem.netlist)
    atpg = run_stuck_at_atpg(view, AtpgConfig(
        seed=3, block_width=64, max_random_blocks=2,
        podem_fault_limit=50))
    timing = TimingContext(problem.netlist).analyze(_CLOCK)
    config = spec.build_config(problem)
    graphs = {
        kind.value: build_wcm_graph(problem, kind, problem.scan_ffs,
                                    config)
        for kind in (PortKind.TSV_INBOUND, PortKind.TSV_OUTBOUND)
    }
    return {
        "atpg": dataclasses.asdict(atpg),
        "arrival": timing.arrival_ps,
        "required": timing.required_ps,
        "critical": timing.critical_path_ps,
        "endpoints": [dataclasses.asdict(e) for e in timing.endpoints],
        "adjacency": {k: g.adjacency for k, g in graphs.items()},
        "graph_stats": {k: dataclasses.asdict(g.stats)
                        for k, g in graphs.items()},
    }


class TestPythonWithoutNumpy:
    def test_python_backend_runs_with_numpy_hidden(self, monkeypatch):
        """The default backend must not need numpy at all."""
        _hide_numpy(monkeypatch)
        configure(backend="python")
        products = _kernel_products(spec_for_iteration(2019, 0))
        assert products["atpg"]["total_faults"] > 0
        assert products["arrival"]


@settings(max_examples=8, deadline=None)
@given(index=st.integers(min_value=0, max_value=10**6))
def test_backends_agree_on_generated_instances(index):
    """Property: python and numpy kernels produce identical ATPG
    results, timing dictionaries and sharing graphs on fuzzer-generated
    instance specs."""
    if not numpy_available():
        pytest.skip("numpy not installed")
    spec = spec_for_iteration(97, index)
    try:
        configure(backend="python")
        plain = _kernel_products(spec)
        configure(backend="numpy")
        vector = _kernel_products(spec)
    finally:
        configure(backend="python")
    assert plain == vector
