"""Wrapper/TAM co-optimization: designer, packer, exact oracles,
experiment driver (DESIGN.md §15).

The load-bearing suite is differential: a brute-force wrapper-chain
designer and an exhaustive branch-and-bound packer check the greedy
production paths over a seeded corpus, with the heuristic's optimality
ratio pinned. Hypothesis sweeps pin the structural invariants (exact
cover, no lane/time overlap, monotone staircases), and the driver
tests pin byte-identical output across worker counts and kernel
backends.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.common import SCALES, result_fingerprint
from repro.runtime.backend import numpy_available
from repro.runtime.config import configure
from repro.schedule import (
    DieTestModel,
    balanced_chain_lengths,
    best_fit_schedule,
    candidate_points,
    chain_test_time,
    design_wrapper,
    exact_schedule,
    exact_wrapper_max_length,
    internal_chain_count,
    pareto_points,
    run_schedule,
    schedule_violations,
    staircase,
    staircase_fingerprint,
    waterfill_max,
)
from repro.schedule.oracle import MAX_ORACLE_DIES
from repro.util.errors import ConfigError, ReproError
from repro.util.rng import DeterministicRng

SMOKE = SCALES["smoke"]

#: worst best-fit/exact makespan ratio over the seeded corpus below —
#: measured 1.3351..; any regression past this is a packer change
PINNED_RATIO = 1.34
CORPUS_SEEDS = 40


def corpus_instance(seed: int):
    """One seeded small instance: <= 6 dies, TAM budget <= 4."""
    rng = DeterministicRng(seed).child("schedule", "corpus")
    dies = rng.randint(2, 6)
    budget = rng.randint(2, 4)
    models = [
        DieTestModel(
            f"d{i}",
            tuple(rng.randint(1, 9) for _ in range(rng.randint(0, 3)))
            or (rng.randint(1, 9),),
            rng.randint(0, 12), rng.randint(1, 12))
        for i in range(dies)
    ]
    return models, budget


# ---------------------------------------------------------------------------
# Wrapper-chain design
# ---------------------------------------------------------------------------
class TestChains:
    def test_model_validation(self):
        with pytest.raises(ConfigError):
            DieTestModel("x", (0,), 1, 4)
        with pytest.raises(ConfigError):
            DieTestModel("x", (2,), -1, 4)
        with pytest.raises(ConfigError):
            DieTestModel("x", (2,), 1, 0)

    def test_balanced_chain_lengths(self):
        assert balanced_chain_lengths(0, 3) == ()
        assert balanced_chain_lengths(7, 1) == (7,)
        assert balanced_chain_lengths(7, 2) == (4, 3)
        assert balanced_chain_lengths(7, 4) == (2, 2, 2, 1)
        assert balanced_chain_lengths(2, 5) == (1, 1)  # capped at ffs

    def test_internal_chain_count_policy(self):
        assert internal_chain_count(1) == 1
        assert internal_chain_count(16) == 1
        assert internal_chain_count(17) == 2
        assert internal_chain_count(1000) == 4

    def test_design_is_lpt(self):
        model = DieTestModel("d", (8, 5, 3), 4, 10)
        plan = design_wrapper(model, 2)
        # 8 | 5+3, then 4 units water-fill the gap and the remainder
        assert plan.lengths == (10, 10)
        assert sorted(e for c in plan.chains for e in c) == sorted(
            ["ic0", "ic1", "ic2", "wc0", "wc1", "wc2", "wc3"])

    def test_chain_test_time_formula(self):
        assert chain_test_time(0, 5) == 5
        assert chain_test_time(7, 10) == 87

    def test_staircase_monotone_and_clamped(self):
        model = DieTestModel("d", (9,), 3, 4)
        points = staircase(model, 6)
        assert [p.width for p in points] == [1, 2, 3, 4, 5, 6]
        times = [p.time for p in points]
        assert times == sorted(times, reverse=True)
        # beyond the useful width the clamp keeps the best design
        assert points[-1].used_width <= points[-1].width

    def test_pareto_points_are_strict_corners(self):
        model = DieTestModel("d", (9,), 3, 4)
        corners = pareto_points(staircase(model, 6))
        times = [p.time for p in corners]
        assert times == sorted(set(times), reverse=True)
        assert all(p.used_width == p.width for p in corners)

    def test_staircase_fingerprint_stable(self):
        model = DieTestModel("d", (4, 2), 3, 6)
        assert staircase_fingerprint(model, 4) == \
            staircase_fingerprint(model, 4)


models_st = st.builds(
    DieTestModel,
    name=st.just("h"),
    internal_chains=st.lists(st.integers(1, 9), min_size=0,
                             max_size=4).map(tuple),
    wrapper_cells=st.integers(0, 12),
    patterns=st.integers(1, 20),
)


class TestChainProperties:
    @settings(max_examples=60, deadline=None)
    @given(model=models_st, width=st.integers(1, 5))
    def test_partition_covers_every_element_once(self, model, width):
        plan = design_wrapper(model, width)
        placed = sorted(e for chain in plan.chains for e in chain)
        want = sorted(
            [f"ic{i}" for i in range(len(model.internal_chains))]
            + [f"wc{i}" for i in range(model.wrapper_cells)])
        assert placed == want
        assert plan.lengths == tuple(
            sum(model.internal_chains[int(e[2:])] if e.startswith("ic")
                else 1 for e in chain)
            for chain in plan.chains)

    @settings(max_examples=60, deadline=None)
    @given(model=models_st)
    def test_time_monotone_in_width(self, model):
        times = [p.time for p in staircase(model, 6)]
        assert times == sorted(times, reverse=True)

    @settings(max_examples=60, deadline=None)
    @given(model=models_st, width=st.integers(1, 5),
           extra=st.integers(1, 5))
    def test_fewer_cells_never_slower(self, model, width, extra):
        """The metamorphic heart: the WCM reduction (fewer wrapper
        cells) can never test slower at equal width and patterns."""
        fatter = DieTestModel(model.name, model.internal_chains,
                              model.wrapper_cells + extra, model.patterns)
        assert staircase(model, width)[-1].time <= \
            staircase(fatter, width)[-1].time

    @settings(max_examples=40, deadline=None)
    @given(model=models_st, width=st.integers(1, 4))
    def test_greedy_within_lpt_bound_of_exact(self, model, width):
        exact = exact_wrapper_max_length(model, width)
        greedy = design_wrapper(model, width).max_length
        assert exact <= greedy
        assert 3 * greedy <= 4 * exact


# ---------------------------------------------------------------------------
# Packing
# ---------------------------------------------------------------------------
class TestPack:
    def test_empty_schedule(self):
        schedule = best_fit_schedule([], 4)
        assert schedule.makespan == 0
        assert schedule.utilization == 0.0
        assert not schedule_violations(schedule, [], 4)

    def test_duplicate_names_rejected(self):
        model = DieTestModel("d", (2,), 0, 2)
        with pytest.raises(ConfigError):
            best_fit_schedule([model, model], 4)

    def test_budget_validated(self):
        with pytest.raises(ConfigError):
            best_fit_schedule([], 0)
        with pytest.raises(ConfigError):
            candidate_points(DieTestModel("d", (2,), 0, 2), 0)

    def test_single_die_uses_best_corner(self):
        model = DieTestModel("d", (9,), 3, 4)
        schedule = best_fit_schedule([model], 4)
        assert len(schedule.placements) == 1
        placement = schedule.placements[0]
        assert placement.start == 0
        assert placement.time == staircase(model, 4)[-1].time

    def test_violations_catch_overlap_and_bounds(self):
        model = DieTestModel("d", (3,), 0, 2)
        schedule = best_fit_schedule([model], 2)
        bad = schedule.placements[0]
        from repro.schedule import Placement, Schedule
        forged = Schedule(budget=2, placements=(
            bad, Placement(die="e", width=5, lane=0, start=0,
                           time=bad.time)))
        other = DieTestModel("e", (3,), 0, 2)
        problems = schedule_violations(forged, [model, other], 2)
        assert any("outside budget" in p for p in problems)
        assert any("overlap" in p for p in problems)

    def test_fingerprint_deterministic(self):
        models, budget = corpus_instance(3)
        assert best_fit_schedule(models, budget).fingerprint() == \
            best_fit_schedule(models, budget).fingerprint()


schedules_st = st.lists(
    st.tuples(st.lists(st.integers(1, 8), min_size=1,
                       max_size=3).map(tuple),
              st.integers(0, 10), st.integers(1, 10)),
    min_size=1, max_size=4)


class TestPackProperties:
    @settings(max_examples=60, deadline=None)
    @given(raw=schedules_st, budget=st.integers(1, 5))
    def test_schedule_always_valid(self, raw, budget):
        models = [DieTestModel(f"d{i}", chains, cells, patterns)
                  for i, (chains, cells, patterns) in enumerate(raw)]
        schedule = best_fit_schedule(models, budget)
        assert schedule_violations(schedule, models, budget) == []
        # makespan is the max rectangle end; every die fits the budget
        assert schedule.makespan == max(p.end for p in schedule.placements)
        for p in schedule.placements:
            assert 0 <= p.lane and p.lane + p.width <= budget
        # pairwise lane/time disjointness, independently recomputed
        for i, a in enumerate(schedule.placements):
            for b in schedule.placements[i + 1:]:
                lanes = a.lane < b.lane + b.width and \
                    b.lane < a.lane + a.width
                times = a.start < b.end and b.start < a.end
                assert not (lanes and times)


# ---------------------------------------------------------------------------
# Exact oracles
# ---------------------------------------------------------------------------
class TestOracles:
    def test_waterfill_closed_form(self):
        assert waterfill_max([], 0, 3) == 0
        assert waterfill_max([5, 2], 0, 2) == 5
        assert waterfill_max([5, 2], 3, 2) == 5  # fits the gap exactly
        assert waterfill_max([5, 2], 4, 2) == 6
        assert waterfill_max([7], 21, 4) == 7   # capacity 21 at width 4
        with pytest.raises(ConfigError):
            waterfill_max([1], -1, 2)
        with pytest.raises(ConfigError):
            waterfill_max([1], 0, 0)

    def test_exact_designer_small_cases(self):
        assert exact_wrapper_max_length(
            DieTestModel("d", (8, 5, 3), 0, 2), 2) == 8
        assert exact_wrapper_max_length(
            DieTestModel("d", (3, 3, 2), 0, 2), 2) == 5
        assert exact_wrapper_max_length(
            DieTestModel("d", (), 7, 3), 3) == 3

    def test_exact_designer_node_guard(self):
        model = DieTestModel("d", tuple(range(1, 13)), 0, 2)
        with pytest.raises(ReproError):
            exact_wrapper_max_length(model, 4, max_nodes=50)

    def test_exact_schedule_die_cap_and_guard(self):
        models = [DieTestModel(f"d{i}", (2,), 0, 2)
                  for i in range(MAX_ORACLE_DIES + 1)]
        with pytest.raises(ReproError):
            exact_schedule(models, 4)
        big, budget = corpus_instance(0)
        with pytest.raises(ReproError):
            exact_schedule(big, budget, max_nodes=3)

    def test_exact_schedule_empty(self):
        assert exact_schedule([], 4).makespan == 0

    def test_corpus_heuristic_vs_exact(self):
        """Full seeded corpus: both schedules valid, the exact one
        never worse, and the heuristic within the pinned ratio."""
        worst = 1.0
        for seed in range(CORPUS_SEEDS):
            models, budget = corpus_instance(seed)
            heuristic = best_fit_schedule(models, budget)
            assert schedule_violations(heuristic, models, budget) == []
            exact = exact_schedule(models, budget)
            assert schedule_violations(exact, models, budget) == []
            assert exact.makespan <= heuristic.makespan
            worst = max(worst, heuristic.makespan / exact.makespan)
        assert worst <= PINNED_RATIO

    def test_exact_schedule_deterministic(self):
        models, budget = corpus_instance(7)
        assert exact_schedule(models, budget).fingerprint() == \
            exact_schedule(models, budget).fingerprint()

    def test_exact_returns_heuristic_placements_when_optimal(self):
        model = DieTestModel("solo", (5,), 2, 3)
        heuristic = best_fit_schedule([model], 3)
        exact = exact_schedule([model], 3)
        assert exact.fingerprint() == heuristic.fingerprint()


# ---------------------------------------------------------------------------
# Verification wiring (check registry + mutants)
# ---------------------------------------------------------------------------
class TestVerifyWiring:
    def test_check_registered_and_clean(self):
        from repro.verify.checks import CHECKS, run_checks
        from repro.verify.instances import InstanceSpec

        assert "schedule" in CHECKS
        assert run_checks(InstanceSpec(seed=11), ["schedule"]) == []

    def test_fuzz_prefix_maps_to_schedule(self):
        from repro.verify.fuzz import _checks_of

        assert _checks_of(["schedule[pack]: overlap: ..."]) == ["schedule"]

    def test_schedule_mutants_all_killed(self):
        from repro.verify.mutants import MUTANTS, self_check

        names = [n for n in MUTANTS if n.startswith("schedule-")]
        assert len(names) == 3
        results = self_check(root_seed=0, budget=25,
                             checks=["schedule"], mutant_names=names)
        assert all(r.killed for r in results), \
            [(r.name, r.killed) for r in results]


# ---------------------------------------------------------------------------
# Experiment driver
# ---------------------------------------------------------------------------
class TestDriver:
    def test_smoke_table_and_acceptance(self):
        result = run_schedule(SMOKE, fixed_patterns=24,
                              circuits=("b11",), families=("grid",))
        assert not result.failures
        rendered = result.render()
        assert "ours <= Agrawal" in rendered
        from repro.experiments.common import dies_for_scale

        leq, _strict, total = result.die_wins()
        assert total == len(dies_for_scale(SMOKE, ("b11",)))
        assert leq == total  # ours never slower on any die
        # stack rows exist for both the benchmark and the family stack
        assert "b11" in rendered and "grid" in rendered

    def test_driver_deterministic_across_jobs(self):
        serial = run_schedule(SMOKE, fixed_patterns=24,
                              circuits=("b11",), families=())
        parallel = run_schedule(SMOKE, fixed_patterns=24,
                                circuits=("b11",), families=(), jobs=2)
        assert result_fingerprint(serial) == result_fingerprint(parallel)

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_driver_deterministic_across_backends(self):
        try:
            configure(backend="numpy")
            with_numpy = run_schedule(SMOKE, fixed_patterns=24,
                                      circuits=("b11",), families=())
        finally:
            configure(backend="python")
        with_python = run_schedule(SMOKE, fixed_patterns=24,
                                   circuits=("b11",), families=())
        assert result_fingerprint(with_numpy) == \
            result_fingerprint(with_python)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            run_schedule(SMOKE, budget=0)
        with pytest.raises(ConfigError):
            run_schedule(SMOKE, budget=4, ref_width=8)
