"""Tests for fault-universe construction and collapsing."""

import pytest

from repro.atpg.faults import (
    Fault,
    FaultKind,
    Polarity,
    build_fault_list,
)
from repro.dft.testview import build_prebond_test_view
from repro.netlist.builder import NetlistBuilder
from repro.netlist.core import PortKind


def single_gate_view(cell: str, n_inputs: int):
    builder = NetlistBuilder("fg")
    inputs = [builder.add_input(f"i{k}") for k in range(n_inputs)]
    out = builder.add_gate(cell, inputs, name="g")
    builder.add_output("po", out)
    return build_prebond_test_view(builder.finish())


class TestCollapsing:
    def test_nand_input_sa0_collapsed(self):
        view = single_gate_view("NAND2_X1", 2)
        faults = build_fault_list(view)
        described = {f.describe() for f in faults.faults}
        # single-sink stems collapse their SA0 into the output SA1
        assert "i0 s-a-0" not in described
        assert "i0 s-a-1" in described
        assert faults.collapsed_away > 0

    def test_or_input_sa1_collapsed(self):
        view = single_gate_view("OR2_X1", 2)
        described = {f.describe() for f in build_fault_list(view).faults}
        assert "i0 s-a-1" not in described
        assert "i0 s-a-0" in described

    def test_xor_inputs_not_collapsed(self):
        view = single_gate_view("XOR2_X1", 2)
        described = {f.describe() for f in build_fault_list(view).faults}
        assert "i0 s-a-0" in described and "i0 s-a-1" in described

    def test_collapse_disabled(self):
        view = single_gate_view("NAND2_X1", 2)
        collapsed = build_fault_list(view, collapse=True)
        full = build_fault_list(view, collapse=False)
        assert full.total > collapsed.total
        assert full.collapsed_away == 0


class TestBranchFaults:
    def test_multi_sink_nets_get_branches(self):
        builder = NetlistBuilder("mb")
        a = builder.add_input("a")
        b = builder.add_input("b")
        x = builder.add_gate("XOR2_X1", [a, b], name="g0")
        y = builder.add_gate("XOR2_X1", [a, x], name="g1")
        builder.add_output("po", y)
        view = build_prebond_test_view(builder.finish())
        faults = build_fault_list(view)
        branches = [f for f in faults.faults if f.kind is FaultKind.BRANCH]
        assert any(f.net == "a" and f.owner == "g0" for f in branches)
        assert any(f.net == "a" and f.owner == "g1" for f in branches)

    def test_single_sink_net_has_no_branch(self):
        view = single_gate_view("XOR2_X1", 2)
        faults = build_fault_list(view)
        assert not any(f.kind is FaultKind.BRANCH for f in faults.faults)

    def test_obs_branch_on_ff_d(self, small_test_view):
        faults = build_fault_list(small_test_view)
        assert any(f.kind is FaultKind.OBS_BRANCH for f in faults.faults)


class TestExclusions:
    def test_floating_tsv_faults_excluded(self):
        builder = NetlistBuilder("fx")
        a = builder.add_input("a")
        tin = builder.add_input("tin", kind=PortKind.TSV_INBOUND)
        out = builder.add_gate("AND2_X1", [a, tin])
        builder.add_output("po", out)
        view = build_prebond_test_view(builder.finish())
        faults = build_fault_list(view)
        assert not any(f.net == "tin" for f in faults.faults)
        assert faults.prebond_untestable >= 2

    def test_constant_net_faults_excluded(self, small_test_view):
        faults = build_fault_list(small_test_view)
        constant_nets = set(small_test_view.constant_nets)
        assert not any(f.net in constant_nets for f in faults.faults)
        assert faults.constrained_untestable >= 0

    def test_outbound_pad_branch_excluded_but_stem_kept(self):
        builder = NetlistBuilder("ob")
        a = builder.add_input("a")
        b = builder.add_input("b")
        out = builder.add_gate("AND2_X1", [a, b])
        builder.add_output("tsvout0", out, kind=PortKind.TSV_OUTBOUND)
        view = build_prebond_test_view(builder.finish())
        faults = build_fault_list(view)
        # the net's stem faults remain in the universe (they are the
        # coverage gap wrappers exist to close) ...
        assert any(f.net == out and f.kind is FaultKind.STEM
                   for f in faults.faults)
        # ... and the pad-side branch is uniformly dark
        assert faults.prebond_untestable >= 2


class TestSampling:
    def test_sample_is_deterministic_and_bounded(self, small_test_view):
        faults = build_fault_list(small_test_view)
        s1 = faults.sample(50, seed=9)
        s2 = faults.sample(50, seed=9)
        assert [f.describe() for f in s1.faults] == \
            [f.describe() for f in s2.faults]
        assert s1.total == 50

    def test_oversample_returns_self(self, small_test_view):
        faults = build_fault_list(small_test_view)
        assert faults.sample(10**9, seed=1) is faults
