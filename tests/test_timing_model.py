"""Tests for the reuse timing models (accurate vs load-only)."""

import math

import pytest

from repro.core.config import Scenario, WcmConfig
from repro.core.timing_model import FfReuseLedger, ReuseTimingModel
from repro.netlist.core import PortKind


@pytest.fixture(scope="module")
def models(medium_scenarios, medium_problem):
    _area, tight, problem_tight = medium_scenarios
    ours = ReuseTimingModel(problem_tight, WcmConfig.ours(tight))
    agrawal = ReuseTimingModel(problem_tight, WcmConfig.agrawal(tight))
    return ours, agrawal, problem_tight


class TestLoads:
    def test_accurate_load_includes_wire(self, models):
        ours, agrawal, problem = models
        for tsv in problem.inbound_tsvs[:10]:
            assert ours.model_load_ff(tsv) >= agrawal.model_load_ff(tsv)

    def test_pin_load_matches_netlist(self, models):
        ours, _agrawal, problem = models
        tsv = problem.inbound_tsvs[0]
        net = problem.netlist.port(tsv).net
        assert ours.pin_load_ff(tsv) == pytest.approx(
            problem.netlist.sink_cap_ff(net))


class TestNodeFilters:
    def test_area_scenario_slack_filter_open(self, medium_problem):
        config = WcmConfig.ours(Scenario.area_optimized())
        model = ReuseTimingModel(medium_problem, config)
        for tsv in medium_problem.outbound_tsvs[:10]:
            assert model.outbound_node_eligible(tsv)

    def test_cap_filter_excludes_heavy_tsvs(self, models):
        ours, _agrawal, problem = models
        loads = {t: ours.model_load_ff(t) for t in problem.inbound_tsvs}
        threshold = ours.config.scenario.cap_th_ff
        for tsv, load in loads.items():
            assert ours.inbound_node_eligible(tsv) == (load < threshold)


class TestPairFeasibility:
    def test_untimed_scenario_always_feasible(self, medium_problem):
        config = WcmConfig.ours(Scenario.area_optimized())
        model = ReuseTimingModel(medium_problem, config)
        ff = medium_problem.scan_ffs[0]
        tsv = medium_problem.inbound_tsvs[0]
        assert model.inbound_reuse_feasible(ff, tsv)
        assert model.outbound_reuse_feasible(
            ff, medium_problem.outbound_tsvs[0])

    def test_ff_ff_pairs_never_feasible(self, models):
        ours, _agrawal, problem = models
        a, b = problem.scan_ffs[:2]
        assert not ours.pair_feasible(a, b, PortKind.TSV_INBOUND,
                                      a_is_ff=True, b_is_ff=True)

    def test_accurate_model_stricter_than_load_only(self, models):
        """Anything ours admits under tight timing, [4]'s wire-blind
        model admits too (it ignores a positive cost term)."""
        ours, agrawal, problem = models
        ffs = problem.scan_ffs[:8]
        tsvs = problem.inbound_tsvs[:8]
        for ff in ffs:
            for tsv in tsvs:
                if ours.inbound_reuse_feasible(ff, tsv):
                    assert agrawal.inbound_reuse_feasible(ff, tsv)

    def test_distance_matters_only_with_wire(self, models):
        ours, agrawal, problem = models
        ff = problem.scan_ffs[0]
        near = min(problem.inbound_tsvs,
                   key=lambda t: ours.distance_um(ff, t))
        far = max(problem.inbound_tsvs,
                  key=lambda t: ours.distance_um(ff, t))
        assert ours.distance_um(ff, near) < ours.distance_um(ff, far)


class TestCliqueStates:
    def test_initial_state_inbound(self, models):
        ours, _agrawal, problem = models
        tsv = problem.inbound_tsvs[0]
        state = ours.initial_state(tsv, PortKind.TSV_INBOUND, is_ff=False)
        assert state.members == (tsv,)
        assert state.cap_ff > 0
        assert not state.has_ff

    def test_merge_rejects_two_ffs(self, models):
        ours, _agrawal, problem = models
        a = ours.initial_state(problem.scan_ffs[0], PortKind.TSV_INBOUND,
                               is_ff=True)
        b = ours.initial_state(problem.scan_ffs[1], PortKind.TSV_INBOUND,
                               is_ff=True)
        assert ours.merged_state(a, b) is None

    def test_merge_accumulates_cap(self, models):
        ours, _agrawal, problem = models
        t1, t2 = problem.inbound_tsvs[:2]
        a = ours.initial_state(t1, PortKind.TSV_INBOUND, is_ff=False)
        b = ours.initial_state(t2, PortKind.TSV_INBOUND, is_ff=False)
        merged = ours.merged_state(a, b)
        if merged is not None:
            assert merged.cap_ff >= a.cap_ff + b.cap_ff
            assert set(merged.members) == {t1, t2}

    def test_merge_respects_group_size_rule(self, models):
        ours, _agrawal, problem = models
        tsvs = problem.inbound_tsvs
        state = ours.initial_state(tsvs[0], PortKind.TSV_INBOUND, False)
        grown = [tsvs[0]]
        for tsv in tsvs[1:]:
            nxt = ours.merged_state(
                state, ours.initial_state(tsv, PortKind.TSV_INBOUND, False))
            if nxt is None:
                continue
            state = nxt
            grown.append(tsv)
        assert len(state.members) <= ours.config.max_group_size


class TestLedger:
    def test_outbound_single_use(self, medium_problem):
        config = WcmConfig.ours(Scenario.area_optimized())
        model = ReuseTimingModel(medium_problem, config)
        ledger = FfReuseLedger(model)
        ff = medium_problem.scan_ffs[0]
        tsv = medium_problem.outbound_tsvs[0]
        state = model.initial_state(tsv, PortKind.TSV_OUTBOUND, False)
        assert ledger.outbound_adoption_feasible(ff, state)
        ledger.commit(ff, state)
        assert not ledger.outbound_adoption_feasible(ff, state)

    def test_inbound_budget_accumulates(self, models):
        ours, _agrawal, problem = models
        ledger = FfReuseLedger(ours)
        ff = problem.scan_ffs[0]
        tsv = problem.inbound_tsvs[0]
        state = ours.initial_state(tsv, PortKind.TSV_INBOUND, False)
        adoptions = 0
        while ledger.inbound_adoption_feasible(ff, state) and adoptions < 100:
            ledger.commit(ff, state)
            adoptions += 1
        # the Q-slack budget must bound repeated adoptions eventually
        assert adoptions < 100
