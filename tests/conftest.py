"""Shared fixtures: small dies and prepared problems, built once."""

import dataclasses

import pytest

from repro.runtime import trace
from repro.runtime.config import current_config


@pytest.fixture(autouse=True)
def _isolate_runtime_config():
    """Restore the process-wide runtime config after every test, so a
    test that configures jobs/cache/timeouts/chaos (directly or through
    the CLI) can't leak into its neighbours. A tracer started during
    the test (configure(trace_dir=...) or the CLI flag) is stopped,
    since its sink points into a directory the test owns."""
    config = current_config()
    saved = {f.name: getattr(config, f.name)
             for f in dataclasses.fields(config)}
    tracer_before = trace.active()
    yield
    for name, value in saved.items():
        setattr(config, name, value)
    if trace.active() is not tracer_before:
        trace.stop()
        if tracer_before is not None:
            trace.start(tracer_before.trace_dir, role=tracer_before.role)

from repro.bench.generator import generate_die
from repro.bench.itc99 import die_profile
from repro.core.config import Scenario, WcmConfig
from repro.core.problem import build_problem, tight_clock_for
from repro.dft.scan import stitch_scan_chains
from repro.dft.testview import build_prebond_test_view
from repro.dft.wrapper import dedicated_plan, insert_wrappers
from repro.netlist.builder import NetlistBuilder
from repro.netlist.core import PortKind
from repro.place.placer import place_die


@pytest.fixture(scope="session")
def small_die():
    """b11 die0 (120 gates): generated, placed, scan-stitched."""
    netlist = generate_die(die_profile("b11", 0), seed=2019)
    place_die(netlist)
    stitch_scan_chains(netlist)
    return netlist


@pytest.fixture(scope="session")
def medium_die():
    """b12 die1 (397 gates): generated, placed, scan-stitched."""
    netlist = generate_die(die_profile("b12", 1), seed=2019)
    place_die(netlist)
    stitch_scan_chains(netlist)
    return netlist


@pytest.fixture(scope="session")
def small_problem(small_die):
    return build_problem(small_die, already_prepared=True)


@pytest.fixture(scope="session")
def medium_problem(medium_die):
    return build_problem(medium_die, already_prepared=True)


@pytest.fixture(scope="session")
def medium_scenarios(medium_problem):
    """(area scenario, tight scenario, tight problem) for b12_die1."""
    clock = tight_clock_for(medium_problem)
    return (Scenario.area_optimized(),
            Scenario.performance_optimized(clock.period_ps),
            medium_problem.retime(clock))


@pytest.fixture(scope="session")
def wrapped_small_die(small_die):
    """Small die with dedicated wrappers inserted and restitched."""
    wrapped, report = insert_wrappers(small_die, dedicated_plan(small_die))
    stitch_scan_chains(wrapped, restitch=True)
    return wrapped, report


@pytest.fixture(scope="session")
def small_test_view(wrapped_small_die):
    wrapped, _report = wrapped_small_die
    return build_prebond_test_view(wrapped)


@pytest.fixture()
def tiny_netlist():
    """A hand-built five-gate netlist with one FF and one TSV each way.

    Structure:
        n1 = NAND(a, tsv_in)        n2 = XOR(n1, ff.Q)
        ff.D = n2                   n3 = INV(n2)
        po0 = n3                    tsv_out = n1
    """
    builder = NetlistBuilder("tiny")
    clk = builder.add_clock()
    a = builder.add_input("a")
    tin = builder.add_input("tsv_in0", kind=PortKind.TSV_INBOUND)
    n1 = builder.add_gate("NAND2_X1", [a, tin], name="g_nand")
    ff_q = builder.netlist.add_net("ffq0").name
    n2 = builder.add_gate("XOR2_X1", [n1, ff_q], name="g_xor")
    builder.add_flip_flop(n2, clk, scan=True, name="ff0", q_net=ff_q)
    n3 = builder.add_gate("INV_X1", [n2], name="g_inv")
    builder.add_output("po0", n3)
    builder.add_output("tsv_out0", n1, kind=PortKind.TSV_OUTBOUND)
    return builder.finish()
