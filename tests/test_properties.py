"""Cross-cutting property-based tests on randomly built circuits."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg.engine import AtpgConfig, run_stuck_at_atpg
from repro.atpg.sim import CompiledCircuit
from repro.dft.testview import build_prebond_test_view
from repro.netlist.builder import NetlistBuilder
from repro.netlist.topology import topological_instances
from repro.netlist.validate import validate_netlist
from repro.util.rng import DeterministicRng

_CELLS = [("INV_X1", 1), ("BUF_X1", 1), ("NAND2_X1", 2), ("NOR2_X1", 2),
          ("AND2_X1", 2), ("OR2_X1", 2), ("XOR2_X1", 2), ("XNOR2_X1", 2),
          ("NAND3_X1", 3), ("AOI21_X1", 3), ("OAI21_X1", 3),
          ("MUX2_X1", 3)]


def random_circuit(seed: int, n_gates: int, n_inputs: int):
    """A random acyclic circuit over the full cell set."""
    rng = DeterministicRng(seed)
    builder = NetlistBuilder(f"rand{seed}")
    signals = [builder.add_input(f"i{k}") for k in range(n_inputs)]
    for _ in range(n_gates):
        cell, arity = rng.choice(_CELLS)
        ins = [rng.choice(signals)]
        while len(ins) < arity:
            candidate = rng.choice(signals)
            if candidate not in ins or len(signals) < arity:
                ins.append(candidate)
        signals.append(builder.add_gate(cell, ins[:arity]))
    builder.add_output("po", signals[-1])
    # observe a few mid signals so not everything is dead
    for j, net in enumerate(signals[n_inputs::3]):
        builder.add_output(f"obs{j}", net)
    return builder.finish()


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6),
       n_gates=st.integers(min_value=3, max_value=40),
       n_inputs=st.integers(min_value=2, max_value=6))
def test_random_circuits_validate_and_levelize(seed, n_gates, n_inputs):
    netlist = random_circuit(seed, n_gates, n_inputs)
    validate_netlist(netlist)
    assert len(topological_instances(netlist)) == n_gates


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_packed_simulation_agrees_with_per_pattern(seed):
    """Simulating W patterns packed equals W single-pattern runs."""
    netlist = random_circuit(seed, 20, 4)
    view = build_prebond_test_view(netlist)
    circuit = CompiledCircuit(view)
    rng = DeterministicRng(seed)
    width = 16
    mask = (1 << width) - 1
    words = [rng.getrandbits(width) for _ in range(circuit.input_count)]
    packed = circuit.simulate(words, mask)
    for k in (0, width // 2, width - 1):
        singles = [(w >> k) & 1 for w in words]
        single = circuit.simulate(singles, 1)
        for nid in circuit.observe_ids:
            assert (packed[nid] >> k) & 1 == single[nid]


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_atpg_replay_invariant(seed):
    """Coverage claims replay: re-simulating the emitted pattern set
    detects at least 98% of what the engine reported detected."""
    from repro.atpg.engine import AtpgEngine, _patterns_to_words

    netlist = random_circuit(seed, 30, 5)
    view = build_prebond_test_view(netlist)
    engine = AtpgEngine(view, AtpgConfig(
        seed=seed, block_width=32, max_random_blocks=4,
        podem_fault_limit=100))
    result = engine.run()
    if not result.patterns:
        return
    words = _patterns_to_words(result.patterns, engine.circuit.input_count)
    mask = (1 << len(result.patterns)) - 1
    good = engine.circuit.simulate(words, mask)
    replayed = sum(
        1 for i in range(len(engine.fault_list.faults))
        if engine.dispatcher.detect_word(engine.circuit, good, i, mask))
    assert replayed >= result.detected * 0.98


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_sta_arrival_monotone_under_period_change(seed):
    """Arrivals are constraint-independent; only slacks change."""
    from repro.sta.constraints import ClockConstraint
    from repro.sta.timer import TimingAnalyzer

    netlist = random_circuit(seed, 25, 4)
    timer = TimingAnalyzer(netlist)
    loose = timer.analyze(ClockConstraint(period_ps=10000.0))
    tight = timer.analyze(ClockConstraint(period_ps=100.0))
    assert loose.arrival_ps == tight.arrival_ps
    assert loose.worst_slack_ps > tight.worst_slack_ps
