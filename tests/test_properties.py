"""Cross-cutting property-based tests on randomly built circuits."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg.engine import AtpgConfig, run_stuck_at_atpg
from repro.atpg.sim import CompiledCircuit
from repro.dft.testview import build_prebond_test_view
from repro.netlist.builder import NetlistBuilder
from repro.netlist.topology import topological_instances
from repro.netlist.validate import validate_netlist
from repro.util.rng import DeterministicRng
from repro.verify.instances import InstanceSpec

_CELLS = [("INV_X1", 1), ("BUF_X1", 1), ("NAND2_X1", 2), ("NOR2_X1", 2),
          ("AND2_X1", 2), ("OR2_X1", 2), ("XOR2_X1", 2), ("XNOR2_X1", 2),
          ("NAND3_X1", 3), ("AOI21_X1", 3), ("OAI21_X1", 3),
          ("MUX2_X1", 3)]


def random_circuit(seed: int, n_gates: int, n_inputs: int):
    """A random acyclic circuit over the full cell set."""
    rng = DeterministicRng(seed)
    builder = NetlistBuilder(f"rand{seed}")
    signals = [builder.add_input(f"i{k}") for k in range(n_inputs)]
    for _ in range(n_gates):
        cell, arity = rng.choice(_CELLS)
        ins = [rng.choice(signals)]
        while len(ins) < arity:
            candidate = rng.choice(signals)
            if candidate not in ins or len(signals) < arity:
                ins.append(candidate)
        signals.append(builder.add_gate(cell, ins[:arity]))
    builder.add_output("po", signals[-1])
    # observe a few mid signals so not everything is dead
    for j, net in enumerate(signals[n_inputs::3]):
        builder.add_output(f"obs{j}", net)
    return builder.finish()


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6),
       n_gates=st.integers(min_value=3, max_value=40),
       n_inputs=st.integers(min_value=2, max_value=6))
def test_random_circuits_validate_and_levelize(seed, n_gates, n_inputs):
    netlist = random_circuit(seed, n_gates, n_inputs)
    validate_netlist(netlist)
    assert len(topological_instances(netlist)) == n_gates


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_packed_simulation_agrees_with_per_pattern(seed):
    """Simulating W patterns packed equals W single-pattern runs."""
    netlist = random_circuit(seed, 20, 4)
    view = build_prebond_test_view(netlist)
    circuit = CompiledCircuit(view)
    rng = DeterministicRng(seed)
    width = 16
    mask = (1 << width) - 1
    words = [rng.getrandbits(width) for _ in range(circuit.input_count)]
    packed = circuit.simulate(words, mask)
    for k in (0, width // 2, width - 1):
        singles = [(w >> k) & 1 for w in words]
        single = circuit.simulate(singles, 1)
        for nid in circuit.observe_ids:
            assert (packed[nid] >> k) & 1 == single[nid]


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_atpg_replay_invariant(seed):
    """Coverage claims replay: re-simulating the emitted pattern set
    detects at least 98% of what the engine reported detected."""
    from repro.atpg.engine import AtpgEngine, _patterns_to_words

    netlist = random_circuit(seed, 30, 5)
    view = build_prebond_test_view(netlist)
    engine = AtpgEngine(view, AtpgConfig(
        seed=seed, block_width=32, max_random_blocks=4,
        podem_fault_limit=100))
    result = engine.run()
    if not result.patterns:
        return
    words = _patterns_to_words(result.patterns, engine.circuit.input_count)
    mask = (1 << len(result.patterns)) - 1
    good = engine.circuit.simulate(words, mask)
    replayed = sum(
        1 for i in range(len(engine.fault_list.faults))
        if engine.dispatcher.detect_word(engine.circuit, good, i, mask))
    assert replayed >= result.detected * 0.98


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_sta_arrival_monotone_under_period_change(seed):
    """Arrivals are constraint-independent; only slacks change."""
    from repro.sta.constraints import ClockConstraint
    from repro.sta.timer import TimingAnalyzer

    netlist = random_circuit(seed, 25, 4)
    timer = TimingAnalyzer(netlist)
    loose = timer.analyze(ClockConstraint(period_ps=10000.0))
    tight = timer.analyze(ClockConstraint(period_ps=100.0))
    assert loose.arrival_ps == tight.arrival_ps
    assert loose.worst_slack_ps > tight.worst_slack_ps


# ---------------------------------------------------------------------------
# Verification-instance properties: the fuzz generator's subjects obey
# the structural invariants the differential checks assume.
# ---------------------------------------------------------------------------
_instance_specs = st.builds(
    InstanceSpec,
    seed=st.integers(min_value=0, max_value=10**6),
    gates=st.integers(min_value=12, max_value=30),
    ffs=st.integers(min_value=1, max_value=5),
    tsv_in=st.integers(min_value=0, max_value=5),
    tsv_out=st.integers(min_value=0, max_value=5),
    scenario=st.sampled_from(["tight", "area"]),
    method=st.sampled_from(["ours", "agrawal"]),
    coincident=st.booleans(),
)


@settings(max_examples=8, deadline=None)
@given(spec=_instance_specs)
def test_instance_graph_symmetric_and_partition_valid(spec):
    """On any generated instance: the sharing graph's adjacency is
    symmetric and self-loop-free, and the heuristic partition is a
    disjoint clique cover obeying the group-size cap."""
    from repro.core.clique import partition_cliques
    from repro.core.timing_model import ReuseTimingModel
    from repro.netlist.core import PortKind
    from repro.verify.checks import Subject
    from repro.verify.oracles import partition_violations

    subject = Subject(spec)
    for kind in (PortKind.TSV_INBOUND, PortKind.TSV_OUTBOUND):
        graph = subject.kernel_graph(kind)
        for name, neighbours in graph.adjacency.items():
            assert name not in neighbours
            for other in neighbours:
                assert name in graph.adjacency[other], (name, other)
        partition = partition_cliques(
            graph, ReuseTimingModel(subject.problem, subject.config))
        assert not partition_violations(graph, partition,
                                        subject.config.max_group_size)


@settings(max_examples=6, deadline=None)
@given(spec=_instance_specs)
def test_instance_sta_monotone_under_tsv_load_increase(spec):
    """Doubling the outbound-TSV load model can only push arrivals
    later, pointwise, on the generated die."""
    from repro.sta.constraints import UNCONSTRAINED
    from repro.sta.timer import TimingContext

    netlist = spec.build_netlist()
    light = TimingContext(netlist, tsv_cap_ff=15.0).analyze(UNCONSTRAINED)
    heavy = TimingContext(netlist, tsv_cap_ff=30.0).analyze(UNCONSTRAINED)
    assert set(light.arrival_ps) == set(heavy.arrival_ps)
    for net, arrival in light.arrival_ps.items():
        assert heavy.arrival_ps[net] >= arrival, net
    assert heavy.critical_path_ps >= light.critical_path_ps


# ---------------------------------------------------------------------------
# Observability layer: rollups and report merges under reordering
# ---------------------------------------------------------------------------
_METRIC_OP = st.tuples(
    st.sampled_from(["inc", "observe", "gauge"]),
    st.sampled_from(["clique.size", "work.items", "x.generic"]),
    st.integers(min_value=-1000, max_value=1000),
)


def _apply_ops(registry, ops):
    for kind, name, value in ops:
        if kind == "inc":
            registry.inc(name, value)
        elif kind == "observe":
            registry.observe(name, value)
        else:
            registry.set_gauge(name, value)


@settings(max_examples=20, deadline=None)
@given(ops=st.lists(_METRIC_OP, max_size=60),
       cuts=st.lists(st.integers(min_value=0, max_value=60), max_size=4),
       order_seed=st.integers(min_value=0, max_value=10**6))
def test_metric_rollup_order_independent(ops, cuts, order_seed):
    """Partitioning ops across registries and merging in any order —
    the parallel_map completion-order situation — rolls up identically
    to a serial registry (integer values, so sums are exact)."""
    from repro.runtime.trace import MetricsRegistry

    serial = MetricsRegistry()
    _apply_ops(serial, ops)

    bounds = sorted({min(c, len(ops)) for c in cuts} | {0, len(ops)})
    chunks = [ops[a:b] for a, b in zip(bounds, bounds[1:])] or [ops]
    parts = []
    for chunk in chunks:
        registry = MetricsRegistry()
        _apply_ops(registry, chunk)
        parts.append(registry)
    DeterministicRng(order_seed).shuffle(parts)

    merged = MetricsRegistry()
    for part in parts:
        merged.merge_payload(part.to_payload())  # worker ship-back path
    assert merged.to_payload() == serial.to_payload()
    assert merged.rollup(volatile=False) == serial.rollup(volatile=False)


_REPORT = st.builds(
    lambda counters, phases: (counters, phases),
    st.dictionaries(st.sampled_from(["a", "b", "c"]),
                    st.integers(min_value=0, max_value=100), max_size=3),
    st.dictionaries(st.sampled_from(["p", "q"]),
                    st.integers(min_value=0, max_value=1000), max_size=2),
)


def _report_from(spec):
    from repro.runtime.instrument import RunReport

    counters, phases = spec
    report = RunReport()
    for name, amount in counters.items():
        report.add_count(name, amount)
    for name, millis in phases.items():
        # dyadic rational: float sums stay exact, so merge order
        # can't perturb the payload comparison below
        report.add_phase(name, millis / 1024.0)
    return report


@settings(max_examples=20, deadline=None)
@given(x=_REPORT, y=_REPORT, z=_REPORT)
def test_run_report_merge_associative_and_commutative(x, y, z):
    """merge((x+y)+z) == merge(x+(y+z)) and x+y == y+x — the property
    that makes per-cell reports foldable in completion order."""
    left = _report_from(x)
    left.merge(_report_from(y))
    left.merge(_report_from(z))

    inner = _report_from(y)
    inner.merge(_report_from(z))
    right = _report_from(x)
    right.merge(inner)
    assert left.to_payload() == right.to_payload()

    xy = _report_from(x)
    xy.merge(_report_from(y))
    yx = _report_from(y)
    yx.merge(_report_from(x))
    assert xy.to_payload() == yx.to_payload()
