"""Tests for the compiled circuit and packed fault propagation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg.sim import CompiledCircuit
from repro.dft.testview import build_prebond_test_view
from repro.netlist.builder import NetlistBuilder
from repro.util.errors import AtpgError


def make_view():
    """c = AND(a, b); d = XOR(c, a); observed at po."""
    builder = NetlistBuilder("sim")
    a = builder.add_input("a")
    b = builder.add_input("b")
    c = builder.add_gate("AND2_X1", [a, b], name="g_and")
    d = builder.add_gate("XOR2_X1", [c, a], name="g_xor")
    builder.add_output("po", d)
    netlist = builder.finish()
    return build_prebond_test_view(netlist), netlist


class TestGoodSimulation:
    def test_truth_table(self):
        view, _ = make_view()
        circuit = CompiledCircuit(view)
        # columns [a, b]; bit k of a word = value in pattern k (LSB
        # first): a = 1,0,1,0 and b = 1,1,0,0 across patterns 0..3
        values = circuit.simulate([0b0101, 0b0011], 0b1111)
        d_id = circuit.net_ids[view.observe_nets[0][1]]
        # d = (a&b)^a per pattern: 0,0,1,0 -> word 0b0100
        assert values[d_id] == 0b0100

    def test_wrong_input_count_raises(self):
        view, _ = make_view()
        circuit = CompiledCircuit(view)
        with pytest.raises(AtpgError):
            circuit.simulate([1], 0b1)

    def test_constants_applied(self):
        view, _ = make_view()
        view.constant_nets[view.control_nets[0]] = 1  # tie a = 1
        view.control_nets = view.control_nets[1:]
        circuit = CompiledCircuit(view)
        values = circuit.simulate([0b01], 0b11)
        d_id = circuit.observe_ids[0]
        # a tied 1: d = b^1; b = 1,0 across patterns -> d = 0,1 -> 0b10
        assert values[d_id] == 0b10


class TestFaultPropagation:
    def test_stem_detection(self):
        view, netlist = make_view()
        circuit = CompiledCircuit(view)
        good = circuit.simulate([0b0101, 0b0011], 0b1111)
        c_id = circuit.net_ids[netlist.instance("g_and").output_net()]
        # c stuck-at-1: faulty d = 1^a; differs exactly where a&b == 0,
        # i.e. patterns 1,2,3 -> word 0b1110
        det = circuit.propagate_stem(good, c_id, 1, 0b1111)
        assert det == 0b1110

    def test_unactivated_stem_not_detected(self):
        view, netlist = make_view()
        circuit = CompiledCircuit(view)
        # all-ones inputs: c = 1 everywhere, so c s-a-1 never activates
        good = circuit.simulate([0b1111, 0b1111], 0b1111)
        c_id = circuit.net_ids[netlist.instance("g_and").output_net()]
        assert circuit.propagate_stem(good, c_id, 1, 0b1111) == 0

    def test_branch_fault_narrower_than_stem(self):
        view, netlist = make_view()
        circuit = CompiledCircuit(view)
        good = circuit.simulate([0b0101, 0b0011], 0b1111)
        a_id = circuit.net_ids["a"]
        stem = circuit.propagate_stem(good, a_id, 0, 0b1111)
        gate_index = circuit.gate_index_by_name["g_xor"]
        position = list(circuit.gates[gate_index].ins).index(a_id)
        branch = circuit.propagate_branch(good, gate_index, position, 0,
                                          0b1111)
        # a s-a-0 stem: faulty d = 0, good d = 0b0100 -> det 0b0100;
        # the XOR-pin branch leaves the AND path intact: faulty d = a&b,
        # diff = a -> det 0b0101. Distinct effects, both nonzero.
        assert stem == 0b0100
        assert branch == 0b0101

    def test_observation_diff(self):
        view, _ = make_view()
        circuit = CompiledCircuit(view)
        good = circuit.simulate([0b0101, 0b0011], 0b1111)
        d_id = circuit.observe_ids[0]
        det = circuit.observation_diff(good, d_id, 1, 0b1111)
        assert det == (good[d_id] ^ 0b1111)

    def test_propagate_values_returns_changed_map(self):
        view, netlist = make_view()
        circuit = CompiledCircuit(view)
        good = circuit.simulate([0b0101, 0b0011], 0b1111)
        a_id = circuit.net_ids["a"]
        changed = circuit.propagate_values(good, {a_id: 0}, 0b1111)
        assert a_id in changed
        diffs = circuit.observation_diffs(good, changed)
        assert all(word for word in diffs.values())

    @settings(max_examples=20, deadline=None)
    @given(a=st.integers(min_value=0, max_value=255),
           b=st.integers(min_value=0, max_value=255))
    def test_fault_free_propagation_is_empty(self, a, b):
        view, netlist = make_view()
        circuit = CompiledCircuit(view)
        good = circuit.simulate([a, b], 0xFF)
        c_id = circuit.net_ids[netlist.instance("g_and").output_net()]
        # forcing the good value is a no-op
        changed = circuit.propagate_values(good, {c_id: good[c_id]}, 0xFF)
        observed_diffs = circuit.observation_diffs(good, changed)
        assert not observed_diffs


class TestOnGeneratedDie:
    def test_detection_consistency_with_single_pattern(self, small_test_view):
        """A fault detected in a packed block is detected by replaying
        the single detecting pattern."""
        from repro.atpg.engine import _FaultDispatcher, _patterns_to_words
        from repro.atpg.faults import build_fault_list
        from repro.util.rng import DeterministicRng

        circuit = CompiledCircuit(small_test_view)
        faults = build_fault_list(small_test_view)
        dispatcher = _FaultDispatcher(circuit, faults.faults)
        rng = DeterministicRng(5)
        width = 64
        mask = (1 << width) - 1
        words = [rng.getrandbits(width) for _ in range(circuit.input_count)]
        good = circuit.simulate(words, mask)
        checked = 0
        for index in range(len(faults.faults)):
            det = dispatcher.detect_word(circuit, good, index, mask)
            if not det:
                continue
            k = (det & -det).bit_length() - 1
            pattern = sum(((words[j] >> k) & 1) << j
                          for j in range(circuit.input_count))
            single = _patterns_to_words([pattern], circuit.input_count)
            good1 = circuit.simulate(single, 1)
            assert dispatcher.detect_word(circuit, good1, index, 1) == 1
            checked += 1
            if checked >= 25:
                break
        assert checked == 25
