"""The fuzz driver, shrinker, mutation-kill harness, and fuzz CLI."""

import importlib
import json

import pytest

from repro.cli import main
from repro.verify import (
    InstanceSpec,
    run_checks,
    run_fuzz,
    self_check,
    spec_for_iteration,
)
from repro.verify.fuzz import _checks_of


# ---------------------------------------------------------------------------
# Spec stream and serialization
# ---------------------------------------------------------------------------
def test_spec_stream_is_position_independent():
    """Iteration i depends only on (root seed, i): budgets and
    parallelism can never change which specs get visited."""
    first = [spec_for_iteration(5, i) for i in range(6)]
    again = [spec_for_iteration(5, i) for i in range(6)]
    assert first == again
    assert spec_for_iteration(5, 3) != spec_for_iteration(6, 3)


def test_spec_json_round_trip():
    spec = spec_for_iteration(0, 2)
    assert InstanceSpec.from_json(spec.to_json()) == spec


def test_spec_json_rejects_wrong_schema():
    from repro.util.errors import ReproError

    payload = json.loads(spec_for_iteration(0, 0).to_json())
    payload["schema"] = 999
    with pytest.raises(ReproError):
        InstanceSpec.from_json(json.dumps(payload))


def test_spec_json_rejects_unknown_field():
    from repro.util.errors import ReproError

    payload = json.loads(spec_for_iteration(0, 0).to_json())
    payload["frobnication"] = True
    with pytest.raises(ReproError):
        InstanceSpec.from_json(json.dumps(payload))


# ---------------------------------------------------------------------------
# Fuzz driver
# ---------------------------------------------------------------------------
def test_fuzz_small_budget_clean():
    report = run_fuzz(root_seed=0, budget=6)
    assert report.iterations == 6
    assert report.clean
    assert "0 failure(s)" in report.render()


def test_fuzz_unknown_check_rejected():
    with pytest.raises(ValueError):
        run_fuzz(root_seed=0, budget=1, checks=["frobnicate"])


def test_fuzz_seconds_budget_terminates():
    report = run_fuzz(root_seed=0, seconds=0.0)
    assert report.iterations == 0
    assert report.clean


def test_checks_of_maps_divergence_prefixes():
    assert _checks_of(["sim: tape != reference"]) == ["sim"]
    assert _checks_of(["sta[reuse after moving x]: bad"]) == ["sta-reuse"]
    assert _checks_of(["sta[test]: bad"]) == ["sta"]
    assert _checks_of(["fault OBS_BRANCH sa0"]) == ["faults"]
    assert _checks_of(["meta[rotate90][TSV_INBOUND]: x"]) \
        == ["meta-isometry"]
    assert _checks_of(["build: TimingError: boom"]) == ["sim"]
    assert _checks_of(["???"]) == []  # unmatched -> full registry


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------
def test_shrink_converges_on_persistent_failure(monkeypatch):
    """Against a check that always fails, the greedy shrinker walks the
    spec down to the structural floor instead of looping forever."""
    shrink_module = importlib.import_module("repro.verify.shrink")

    monkeypatch.setattr(shrink_module, "run_checks",
                        lambda spec, names=None: ["always: fails"])
    big = InstanceSpec(seed=1, gates=40, ffs=6, tsv_in=6, tsv_out=6,
                       coincident=True, d_th_boundary=True,
                       d_th_fraction=0.8, method="agrawal")
    small = shrink_module.shrink(big, ["sim"])
    assert small.gates < big.gates
    assert small.tsv_in < big.tsv_in
    assert not small.coincident
    assert small.method == "ours"


def test_shrink_family_before_numeric_fields(monkeypatch):
    """The topology axis shrinks first: the very first candidate of a
    non-chain spec is the same spec on the chain family, and a
    persistent failure converges onto chain before the numeric knobs
    reach their floors."""
    shrink_module = importlib.import_module("repro.verify.shrink")
    from repro.verify.shrink import _candidates

    big = InstanceSpec(seed=1, family="htree", gates=40, ffs=6,
                       tsv_in=6, tsv_out=6, fanout_cap=4)
    first = _candidates(big)[0]
    assert first.family == "chain"
    assert (first.gates, first.ffs, first.tsv_in, first.tsv_out) \
        == (big.gates, big.ffs, big.tsv_in, big.tsv_out)

    calls = []

    def always_fails(spec, names=None):
        calls.append(spec)
        return ["always: fails"]

    monkeypatch.setattr(shrink_module, "run_checks", always_fails)
    small = shrink_module.shrink(big, ["sim"])
    assert small.family == "chain"
    assert small.fanout_cap is None
    assert small.gates < big.gates
    # The family cut happened on the first candidate build, not after
    # the numeric ladder.
    assert calls[0].family == "chain"


def test_shrink_keeps_chain_family_stable(monkeypatch):
    """A chain spec emits no family candidate (nothing to shrink to)."""
    from repro.verify.shrink import _candidates

    spec = InstanceSpec(seed=1, family="chain", gates=40)
    assert all(c.family == "chain" for c in _candidates(spec))


def test_shrink_returns_original_when_failure_vanishes(monkeypatch):
    shrink_module = importlib.import_module("repro.verify.shrink")

    monkeypatch.setattr(shrink_module, "run_checks",
                        lambda spec, names=None: [])
    spec = InstanceSpec(seed=1, gates=20, ffs=2)
    assert shrink_module.shrink(spec, ["sim"]) == spec


# ---------------------------------------------------------------------------
# Mutation kill
# ---------------------------------------------------------------------------
def test_self_check_kills_cheap_mutants():
    """The two cheapest mutants die within a handful of iterations —
    the harness demonstrably can fail."""
    results = self_check(root_seed=0, budget=8,
                         checks=["sim", "sta-reuse"],
                         mutant_names=["sim-opcode-swap",
                                       "sta-stale-cache"])
    assert all(r.killed for r in results), results
    assert all(r.iterations <= 8 for r in results)
    assert all(r.evidence for r in results)


def test_self_check_mutants_do_not_leak():
    """After a mutant's context exits, the baseline stream is clean
    again — the monkeypatches restore the real kernels."""
    self_check(root_seed=0, budget=2, checks=["sim"],
               mutant_names=["sim-opcode-swap"])
    assert run_checks(spec_for_iteration(0, 0), ["sim"]) == []


def test_self_check_unknown_mutant_rejected():
    with pytest.raises(ValueError):
        self_check(mutant_names=["frobnicate"])


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestFuzzCli:
    def test_fuzz_clean_exits_zero(self, capsys):
        assert main(["fuzz", "--budget", "4", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "4 iterations" in out
        assert "0 failure(s)" in out

    def test_fuzz_divergence_exits_one(self, capsys, monkeypatch,
                                       tmp_path):
        """A mutant injected around the CLI call: exit 1, shrunk spec
        promoted to --repro-dir."""
        from repro.verify.mutants import MUTANTS

        _description, factory = MUTANTS["sim-opcode-swap"]
        with factory():
            code = main(["fuzz", "--budget", "2", "--seed", "0",
                         "--checks", "sim",
                         "--repro-dir", str(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        repros = list(tmp_path.glob("*.json"))
        assert repros, "no repro promoted"
        assert "repro:" in out
        spec = InstanceSpec.load(repros[0])
        # the promoted spec still reproduces under the mutant
        with factory():
            assert run_checks(spec, ["sim"])

    def test_fuzz_self_check_subset(self, capsys):
        code = main(["fuzz", "--self-check", "--budget", "8",
                     "--seed", "0", "--checks", "sim,graph,sta-reuse",
                     "--mutants", "sim-opcode-swap,grid-dropped-cell,"
                                  "sta-stale-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "self-check passed: 3/3 mutants killed" in out

    def test_fuzz_unknown_check_name_exits_two(self, capsys):
        """Bad flag values follow the repo contract: exit 2 with a
        clean ``repro: error:`` line, never a traceback."""
        assert main(["fuzz", "--budget", "1",
                     "--checks", "frobnicate"]) == 2
        assert "repro: error: unknown checks" in capsys.readouterr().err

    def test_fuzz_unknown_mutant_name_exits_two(self, capsys):
        assert main(["fuzz", "--self-check", "--budget", "1",
                     "--mutants", "frobnicate"]) == 2
        assert "repro: error: unknown mutants" in capsys.readouterr().err

    def test_fuzz_self_check_needs_three_mutants(self, capsys):
        code = main(["fuzz", "--self-check", "--budget", "4",
                     "--seed", "0", "--checks", "sim",
                     "--mutants", "sim-opcode-swap"])
        assert code == 1
        err = capsys.readouterr().err
        assert "need >= 3" in err
