"""Oracle-vs-kernel byte identity on the repo's own fixtures.

The fuzzer exercises the oracles on synthetic instances; these tests
pin them against the same fixture circuits the rest of the suite
trusts (the ITC'99-profiled dies and the hand-built tiny netlist), so
a drifting oracle fails here even if the fuzzer stream happens to
dodge it.
"""

import pytest

from repro.atpg.engine import _FaultDispatcher
from repro.atpg.faults import build_fault_list
from repro.atpg.sim import CompiledCircuit
from repro.core.config import Scenario, WcmConfig
from repro.core.clique import partition_cliques
from repro.core.graph import build_wcm_graph
from repro.core.problem import tight_clock_for
from repro.core.testability import OverlapTestabilityEstimator
from repro.core.timing_model import ReuseTimingModel
from repro.dft.testview import build_prebond_test_view
from repro.netlist.core import PortKind
from repro.sta.constraints import UNCONSTRAINED
from repro.sta.timer import TimingContext, default_case
from repro.util.rng import DeterministicRng
from repro.verify.checks import _compare_graph, _compare_timing
from repro.verify.oracles import (
    exact_min_clique_partition,
    exhaustive_input_words,
    oracle_build_graph,
    oracle_detect_word,
    oracle_simulate,
    oracle_sta,
    partition_violations,
)

_TSV_KINDS = (PortKind.TSV_INBOUND, PortKind.TSV_OUTBOUND)


@pytest.fixture(scope="module")
def tight_small(small_problem):
    """(retimed problem, ours/tight config) for the b11 fixture die."""
    clock = tight_clock_for(small_problem)
    problem = small_problem.retime(clock)
    scenario = Scenario.performance_optimized(clock.period_ps)
    return problem, WcmConfig.ours(scenario)


# ---------------------------------------------------------------------------
# STA
# ---------------------------------------------------------------------------
def test_oracle_sta_matches_problem_baselines(small_problem):
    """The path-enumeration oracle reproduces the problem's stored
    functional and test-mode analyses byte for byte."""
    wrapped = small_problem.dedicated_netlist
    clock = small_problem.timing.constraint
    assert not _compare_timing(
        "functional", small_problem.timing,
        oracle_sta(wrapped, clock,
                   case=default_case(wrapped, test_mode=0)))
    assert not _compare_timing(
        "test", small_problem.test_timing,
        oracle_sta(wrapped, clock,
                   case=default_case(wrapped, test_mode=1)))


def test_oracle_sta_matches_timer_unconstrained(tiny_netlist):
    kernel = TimingContext(tiny_netlist).analyze(UNCONSTRAINED)
    assert not _compare_timing("tiny", kernel,
                               oracle_sta(tiny_netlist, UNCONSTRAINED))


def test_oracle_sta_tsv_cap_monotone(tiny_netlist):
    """Doubling the outbound-TSV load never decreases any arrival —
    the property the fuzzer's monotonicity check relies on."""
    light = oracle_sta(tiny_netlist, UNCONSTRAINED, tsv_cap_ff=15.0)
    heavy = oracle_sta(tiny_netlist, UNCONSTRAINED, tsv_cap_ff=30.0)
    assert set(light.arrival_ps) == set(heavy.arrival_ps)
    assert all(heavy.arrival_ps[n] >= light.arrival_ps[n]
               for n in light.arrival_ps)
    assert any(heavy.arrival_ps[n] > light.arrival_ps[n]
               for n in light.arrival_ps)


# ---------------------------------------------------------------------------
# Simulation and fault detection
# ---------------------------------------------------------------------------
def test_oracle_simulate_tiny_exhaustive(tiny_netlist):
    view = build_prebond_test_view(tiny_netlist)
    circuit = CompiledCircuit(view)
    words, mask = exhaustive_input_words(circuit.input_count)
    kernel = circuit.simulate(words, mask)
    oracle = oracle_simulate(view, words, mask)
    for name, word in oracle.items():
        assert kernel[circuit.net_ids[name]] == word, name


def test_oracle_simulate_small_view_random(small_test_view):
    circuit = CompiledCircuit(small_test_view)
    rng = DeterministicRng(2019).child("verify", "oracle-sim")
    mask = (1 << 64) - 1
    words = [rng.getrandbits(64) for _ in range(circuit.input_count)]
    kernel = circuit.simulate(words, mask)
    oracle = oracle_simulate(small_test_view, words, mask)
    for name, word in oracle.items():
        assert kernel[circuit.net_ids[name]] == word, name


def test_oracle_detects_match_dispatcher_tiny(tiny_netlist):
    """Every collapsed fault, every input pattern: event-driven kernel
    detection equals full forced re-simulation."""
    view = build_prebond_test_view(tiny_netlist)
    circuit = CompiledCircuit(view)
    words, mask = exhaustive_input_words(circuit.input_count)
    faults = build_fault_list(view)
    dispatcher = _FaultDispatcher(circuit, faults.faults)
    good = circuit.simulate(words, mask)
    oracle_good = oracle_simulate(view, words, mask)
    for index, fault in enumerate(faults.faults):
        kernel = dispatcher.detect_word(circuit, good, index, mask)
        oracle = oracle_detect_word(view, fault, words, mask,
                                    good=oracle_good)
        assert kernel == oracle, (fault.kind, fault.net, fault.polarity)


def test_oracle_detects_match_dispatcher_small_sample(small_test_view):
    circuit = CompiledCircuit(small_test_view)
    rng = DeterministicRng(2019).child("verify", "oracle-faults")
    mask = (1 << 32) - 1
    words = [rng.getrandbits(32) for _ in range(circuit.input_count)]
    faults = build_fault_list(small_test_view)
    dispatcher = _FaultDispatcher(circuit, faults.faults)
    good = circuit.simulate(words, mask)
    oracle_good = oracle_simulate(small_test_view, words, mask)
    for index in range(0, len(faults.faults), 7):  # every 7th fault
        fault = faults.faults[index]
        kernel = dispatcher.detect_word(circuit, good, index, mask)
        oracle = oracle_detect_word(small_test_view, fault, words, mask,
                                    good=oracle_good)
        assert kernel == oracle, (fault.kind, fault.net, fault.polarity)


# ---------------------------------------------------------------------------
# Sharing graph and clique partition
# ---------------------------------------------------------------------------
def test_oracle_graph_matches_kernel(tight_small):
    problem, config = tight_small
    ffs = list(problem.scan_ffs)
    for kind in _TSV_KINDS:
        kernel = build_wcm_graph(
            problem, kind, ffs, config,
            timing_model=ReuseTimingModel(problem, config),
            estimator=OverlapTestabilityEstimator(problem, config))
        oracle = oracle_build_graph(
            problem, kind, ffs, config,
            timing_model=ReuseTimingModel(problem, config),
            estimator=OverlapTestabilityEstimator(problem, config))
        assert not _compare_graph(kind.name, kernel, oracle)


def test_partition_valid_and_not_below_exact_minimum(tight_small):
    problem, config = tight_small
    ffs = list(problem.scan_ffs)
    for kind in _TSV_KINDS:
        graph = build_wcm_graph(
            problem, kind, ffs, config,
            timing_model=ReuseTimingModel(problem, config),
            estimator=OverlapTestabilityEstimator(problem, config))
        partition = partition_cliques(
            graph, ReuseTimingModel(problem, config))
        assert not partition_violations(graph, partition,
                                        config.max_group_size)
        exact = exact_min_clique_partition(graph)
        if exact is not None:
            assert len(partition.cliques) >= exact


def test_exact_partition_on_known_graph():
    """A 4-node path graph a-b-c-d has clique cover number exactly 2."""
    from repro.core.graph import GraphStats, WcmGraph

    graph = WcmGraph(
        kind=PortKind.TSV_OUTBOUND,
        nodes=["a", "b", "c", "d"],
        is_ff={n: False for n in "abcd"},
        adjacency={"a": {"b"}, "b": {"a", "c"}, "c": {"b", "d"},
                   "d": {"c"}},
        excluded_tsvs=[],
        stats=GraphStats(nodes=4, ff_nodes=0, tsv_nodes=4,
                         excluded_tsvs=0, edges=3),
    )
    assert exact_min_clique_partition(graph) == 2
