"""Integrity tests for the transcribed paper data."""

import pytest

from repro.bench.itc99 import all_die_profiles
from repro.experiments.paper_data import (
    FIGURE7_PAPER_MEAN_EDGE_INCREASE_PCT,
    TABLE1_PAPER,
    TABLE3_PAPER,
    TABLE3_PAPER_SUMMARY,
    TABLE4_PAPER_AVERAGE,
    TABLE5_PAPER_AVERAGE,
)


class TestPaperDataIntegrity:
    def test_table3_covers_all_24_dies(self):
        keys = {(p.circuit, p.die_index) for p in all_die_profiles()}
        assert set(TABLE3_PAPER) == keys

    def test_table3_summary_matches_cell_averages(self):
        for key, attr in (("agrawal_area", 0), ("ours_area", 0)):
            pass  # spot-check the two reported averages below
        reused = sum(v["agrawal_area"][0] for v in TABLE3_PAPER.values())
        additional = sum(v["agrawal_area"][1] for v in TABLE3_PAPER.values())
        assert reused / 24 == pytest.approx(
            TABLE3_PAPER_SUMMARY["agrawal_area"]["reused"], abs=0.01)
        assert additional / 24 == pytest.approx(
            TABLE3_PAPER_SUMMARY["agrawal_area"]["additional"], abs=0.01)

    def test_paper_headline_relationships(self):
        """The paper's own claims hold within its own numbers."""
        summary = TABLE3_PAPER_SUMMARY
        assert summary["ours_area"]["additional"] \
            < summary["agrawal_area"]["additional"]
        assert summary["ours_tight"]["additional"] \
            < summary["agrawal_tight"]["additional"]
        assert summary["agrawal_tight"]["violations"] == "20/24"
        assert summary["ours_tight"]["violations"] == "0/24"

    def test_table1_has_all_b12_dies(self):
        assert set(TABLE1_PAPER) == {0, 1, 2, 3}
        for row in TABLE1_PAPER.values():
            assert set(row) == {"inbound", "outbound"}

    def test_table4_coverage_parity(self):
        ours = TABLE4_PAPER_AVERAGE["ours"]["stuck_at"][0]
        agrawal = TABLE4_PAPER_AVERAGE["agrawal"]["stuck_at"][0]
        assert ours == agrawal  # the paper reports identical averages

    def test_table5_overlap_saves_cells(self):
        assert TABLE5_PAPER_AVERAGE["overlap"]["additional"] \
            < TABLE5_PAPER_AVERAGE["no_overlap"]["additional"]

    def test_figure7_positive(self):
        assert FIGURE7_PAPER_MEAN_EDGE_INCREASE_PCT > 0
