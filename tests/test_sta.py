"""Tests for the STA engine: delays, slack, constraints, case analysis."""

import math

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.core import PortKind
from repro.place.placer import place_die
from repro.sta.constraints import ClockConstraint, UNCONSTRAINED, tight_period_for
from repro.sta.delay import LOAD_ONLY_WIRE_MODEL, WireModel
from repro.sta.report import TimingReport, render_timing_report
from repro.sta.timer import TimingAnalyzer, default_case
from repro.util.errors import TimingError


class TestWireModel:
    def test_disabled_model_zeroes_everything(self):
        assert LOAD_ONLY_WIRE_MODEL.wire_delay_ps(500.0, 100.0) == 0.0
        assert LOAD_ONLY_WIRE_MODEL.wire_cap_ff(500.0) == 0.0

    def test_delay_superlinear_in_length(self):
        wire = WireModel()
        d1 = wire.wire_delay_ps(100, 10)
        d2 = wire.wire_delay_ps(200, 10)
        assert d2 > 2 * d1  # distributed RC term is quadratic

    def test_negative_length_clamped(self):
        wire = WireModel()
        assert wire.wire_delay_ps(-5, 10) == 0.0
        assert wire.wire_cap_ff(-5) == 0.0


class TestConstraints:
    def test_unconstrained_has_no_period(self):
        assert not UNCONSTRAINED.is_constrained

    def test_invalid_period_rejected(self):
        with pytest.raises(TimingError):
            ClockConstraint(period_ps=-1.0)
        with pytest.raises(TimingError):
            tight_period_for(0.0)

    def test_tight_period_margin(self):
        assert tight_period_for(1000.0, margin=0.05) == pytest.approx(1050.0)


class TestTimer:
    def test_unconstrained_slack_is_infinite(self, tiny_netlist):
        result = TimingAnalyzer(tiny_netlist).analyze()
        assert math.isinf(result.worst_slack_ps)
        assert not result.has_violation
        assert result.critical_path_ps > 0

    def test_arrival_monotone_along_path(self, tiny_netlist):
        result = TimingAnalyzer(tiny_netlist).analyze()
        n1 = tiny_netlist.instance("g_nand").output_net()
        n2 = tiny_netlist.instance("g_xor").output_net()
        assert result.arrival_ps[n2] > result.arrival_ps[n1]

    def test_violation_when_period_too_short(self, tiny_netlist):
        result = TimingAnalyzer(tiny_netlist).analyze(
            ClockConstraint(period_ps=30.0))
        assert result.has_violation
        assert result.worst_slack_ps < 0

    def test_no_violation_with_generous_period(self, tiny_netlist):
        base = TimingAnalyzer(tiny_netlist).analyze()
        result = TimingAnalyzer(tiny_netlist).analyze(
            ClockConstraint(period_ps=base.critical_path_ps * 2))
        assert not result.has_violation

    def test_wire_model_increases_critical_path(self, medium_die):
        with_wire = TimingAnalyzer(medium_die).analyze()
        without = TimingAnalyzer(medium_die,
                                 wire_model=LOAD_ONLY_WIRE_MODEL).analyze()
        assert with_wire.critical_path_ps > without.critical_path_ps

    def test_outbound_port_slack_query(self, tiny_netlist):
        result = TimingAnalyzer(tiny_netlist).analyze(
            ClockConstraint(period_ps=2000.0))
        slack = result.slack_of_port("tsv_out0__port")
        assert slack > 0
        with pytest.raises(TimingError):
            result.slack_of_port("nonexistent")

    def test_required_ge_arrival_when_met(self, small_die):
        timer = TimingAnalyzer(small_die)
        base = timer.analyze()
        result = timer.analyze(
            ClockConstraint(period_ps=base.critical_path_ps * 1.2))
        assert not result.has_violation
        for net, required in result.required_ps.items():
            arrival = result.arrival_ps.get(net, 0.0)
            assert required >= arrival - 1e-6

    def test_loads_include_wire_cap(self, medium_die):
        loads_wire = TimingAnalyzer(medium_die).compute_loads()
        loads_pin = TimingAnalyzer(
            medium_die, wire_model=LOAD_ONLY_WIRE_MODEL).compute_loads()
        some_net = medium_die.inbound_tsvs()[0].net
        assert loads_wire[some_net] >= loads_pin[some_net]

    def test_scan_si_pins_do_not_load_timing(self, small_die):
        """Chain order must not perturb sign-off timing (shift clock
        domain; dedicated routing)."""
        loads = TimingAnalyzer(small_die).compute_loads()
        ffs = small_die.scan_flip_flops()
        # find a Q net that feeds another FF's SI
        for ff in ffs:
            q_net = ff.output_net()
            sinks = small_die.net(q_net).sinks
            si_sinks = [s for s in sinks
                        if not s.is_port and s.pin_name == "SI"]
            if si_sinks:
                pin_only = sum(
                    small_die.instance(s.owner_name).cell.input_cap(s.pin_name)
                    for s in sinks
                    if not s.is_port and s.pin_name not in ("SI",))
                assert loads[q_net] >= pin_only
                break


class TestCaseAnalysis:
    def _mux_netlist(self):
        builder = NetlistBuilder("cm")
        a = builder.add_input("a")
        b = builder.add_input("b")
        tm = builder.add_input("tm", kind=PortKind.TEST_MODE)
        slow = builder.add_gate("BUF_X1", [b])
        for _ in range(5):
            slow = builder.add_gate("BUF_X1", [slow])
        out = builder.add_gate("MUX2_X1", [a, slow, tm])
        builder.add_output("po", out)
        return builder.finish()

    def test_mux_select_excludes_deselected_arrival(self):
        netlist = self._mux_netlist()
        timer = TimingAnalyzer(netlist)
        functional = timer.analyze(case=default_case(netlist, test_mode=0))
        test = timer.analyze(case=default_case(netlist, test_mode=1))
        # B path is 6 buffers deep; excluded when test_mode=0
        assert test.critical_path_ps > functional.critical_path_ps

    def test_constant_propagation_blocks_downstream(self):
        builder = NetlistBuilder("cp")
        a = builder.add_input("a")
        tm = builder.add_input("tm", kind=PortKind.TEST_MODE)
        gated = builder.add_gate("AND2_X1", [a, tm])
        builder.add_output("po", gated)
        netlist = builder.finish()
        result = TimingAnalyzer(netlist).analyze(
            case=default_case(netlist, test_mode=0))
        # AND with constant-0 input: output constant, endpoint untimed
        assert result.endpoints == [] or all(
            e.name != "po__port" for e in result.endpoints)


class TestReport:
    def test_render_contains_summary(self, tiny_netlist):
        result = TimingAnalyzer(tiny_netlist).analyze(
            ClockConstraint(period_ps=500.0))
        text = render_timing_report(result)
        assert "critical path" in text
        assert "endpoints" in text
        report = TimingReport.from_result(result)
        assert report.endpoint_count == len(result.endpoints)
