"""Tests for the PODEM generator (5-valued search, SCOAP, X-path)."""

import pytest

from repro.atpg.engine import _FaultDispatcher, _patterns_to_words
from repro.atpg.faults import Fault, FaultKind, Polarity, build_fault_list
from repro.atpg.podem import PodemGenerator, X, _eval3
from repro.atpg.sim import CompiledCircuit
from repro.dft.testview import build_prebond_test_view
from repro.netlist.builder import NetlistBuilder


class TestEval3:
    def test_and_with_controlling_zero(self):
        assert _eval3("and", [0, X]) == 0
        assert _eval3("and", [1, X]) == X
        assert _eval3("and", [1, 1]) == 1

    def test_or_with_controlling_one(self):
        assert _eval3("or", [1, X]) == 1
        assert _eval3("or", [0, X]) == X

    def test_xor_unknown_dominates(self):
        assert _eval3("xor", [1, X]) == X
        assert _eval3("xor", [1, 0]) == 1

    def test_mux_select_known(self):
        assert _eval3("mux2", [1, X, 0]) == 1
        assert _eval3("mux2", [X, 0, 1]) == 0
        assert _eval3("mux2", [1, 1, X]) == 1  # both sides agree
        assert _eval3("mux2", [1, 0, X]) == X

    def test_aoi_oai(self):
        assert _eval3("aoi21", [1, 1, 0]) == 0
        assert _eval3("aoi21", [0, X, 0]) == 1
        assert _eval3("oai21", [0, 0, X]) == 1
        assert _eval3("oai21", [X, 0, 1]) == X


def redundant_view():
    """out = OR(x, AND(x, y)) == x — the AND's faults are untestable."""
    builder = NetlistBuilder("red")
    x = builder.add_input("x")
    y = builder.add_input("y")
    inner = builder.add_gate("AND2_X1", [x, y], name="g_and")
    out = builder.add_gate("OR2_X1", [x, inner], name="g_or")
    builder.add_output("po", out)
    netlist = builder.finish()
    return build_prebond_test_view(netlist), netlist


class TestPodemVerdicts:
    def test_detects_testable_fault(self):
        view, netlist = redundant_view()
        circuit = CompiledCircuit(view)
        generator = PodemGenerator(circuit)
        fault = Fault(kind=FaultKind.STEM, polarity=Polarity.SA0, net="x")
        outcome = generator.run(fault)
        assert outcome.status == "detected"
        # verify the cube with the real simulator
        dispatcher = _FaultDispatcher(circuit, [fault])
        pattern = 0
        for j, nid in enumerate(circuit.input_columns):
            if outcome.assignment.get(nid, 0):
                pattern |= 1 << j
        words = _patterns_to_words([pattern], circuit.input_count)
        good = circuit.simulate(words, 1)
        assert dispatcher.detect_word(circuit, good, 0, 1)

    def test_proves_redundant_fault_untestable(self):
        view, netlist = redundant_view()
        circuit = CompiledCircuit(view)
        generator = PodemGenerator(circuit)
        # AND output s-a-0 is masked: out = x | (x&y) = x regardless
        inner_net = netlist.instance("g_and").output_net()
        fault = Fault(kind=FaultKind.STEM, polarity=Polarity.SA0,
                      net=inner_net)
        assert generator.run(fault).status == "untestable"

    def test_unobservable_fault_untestable(self):
        builder = NetlistBuilder("dead")
        a = builder.add_input("a")
        builder.add_gate("INV_X1", [a], name="g_dead")  # drives nothing
        b = builder.add_input("b")
        out = builder.add_gate("BUF_X1", [b])
        builder.add_output("po", out)
        view = build_prebond_test_view(builder.finish())
        circuit = CompiledCircuit(view)
        generator = PodemGenerator(circuit)
        dead_net = builder.netlist.instance("g_dead").output_net()
        fault = Fault(kind=FaultKind.STEM, polarity=Polarity.SA0,
                      net=dead_net)
        assert generator.run(fault).status == "untestable"

    def test_justify_only(self):
        view, netlist = redundant_view()
        circuit = CompiledCircuit(view)
        generator = PodemGenerator(circuit)
        inner = circuit.net_ids[netlist.instance("g_and").output_net()]
        outcome = generator.justify(inner, 1)
        assert outcome.status == "detected"
        # x=1 and y=1 forced
        assigned = {circuit.net_names[n]: v
                    for n, v in outcome.assignment.items()}
        assert assigned.get("x") == 1 and assigned.get("y") == 1


class TestPodemAgainstSimulator:
    def test_cubes_verified_on_generated_die(self, small_test_view):
        """Every PODEM 'detected' verdict must replay in the packed
        simulator (cross-engine consistency)."""
        circuit = CompiledCircuit(small_test_view)
        faults = build_fault_list(small_test_view)
        dispatcher = _FaultDispatcher(circuit, faults.faults)
        generator = PodemGenerator(circuit, backtrack_limit=48)
        verified = 0
        for index, fault in enumerate(faults.faults):
            if verified >= 40:
                break
            outcome = generator.run(fault)
            if outcome.status != "detected":
                continue
            pattern = 0
            for j, nid in enumerate(circuit.input_columns):
                if outcome.assignment.get(nid, 0):
                    pattern |= 1 << j
            words = _patterns_to_words([pattern], circuit.input_count)
            good = circuit.simulate(words, 1)
            assert dispatcher.detect_word(circuit, good, index, 1), \
                f"PODEM cube for {fault.describe()} does not detect"
            verified += 1
        assert verified == 40

    def test_scoap_controllabilities_positive(self, small_test_view):
        circuit = CompiledCircuit(small_test_view)
        generator = PodemGenerator(circuit)
        for nid in circuit.input_columns[:10]:
            assert generator._cc0[nid] == 1
            assert generator._cc1[nid] == 1
        for gate in circuit.gates[:20]:
            assert generator._cc0[gate.out] > 0
            assert generator._cc1[gate.out] > 0
