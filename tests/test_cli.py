"""Tests for the command-line interface."""

import sys

import pytest

from repro.cli import main


class TestCli:
    def test_table2_smoke(self, capsys):
        assert main(["--scale", "smoke", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "b11" in out

    def test_die_command(self, capsys):
        assert main(["die", "b11", "0"]) == 0
        out = capsys.readouterr().out
        assert "b11_die0" in out
        assert "ours/tight" in out
        assert "overhead" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_bad_scale_exits(self):
        with pytest.raises(SystemExit):
            main(["--scale", "galactic", "table2"])

    def test_profile_command(self, capsys):
        assert main(["profile", "b11", "0"]) == 0
        out = capsys.readouterr().out
        assert "profiling b11_die0" in out
        assert "flow.graph" in out
        assert "clique.merges" in out
        assert "agrawal/tight" in out and "ours/tight" in out

    def test_runtime_flags_configure(self, capsys):
        from repro.runtime import current_config
        assert main(["--jobs", "2", "--scale", "smoke", "table2"]) == 0
        assert current_config().jobs == 2
        # flags are also accepted after the subcommand
        assert main(["table2", "--scale", "smoke", "--jobs", "3"]) == 0
        assert current_config().jobs == 3

    def test_cache_flags(self, tmp_path, capsys):
        from repro.runtime import current_config
        assert main(["--cache-dir", str(tmp_path), "--scale", "smoke",
                     "figure7"]) == 0
        config = current_config()
        assert config.cache_dir == str(tmp_path)
        assert not config.no_cache
        assert main(["--no-cache", "--scale", "smoke", "table2"]) == 0
        assert current_config().no_cache

    def test_supervision_flags_configure(self, tmp_path, capsys):
        from repro.runtime import current_config
        assert main(["table2", "--scale", "smoke", "--timeout", "30",
                     "--retries", "2", "--strict",
                     "--checkpoint-dir", str(tmp_path)]) == 0
        config = current_config()
        assert config.timeout_s == 30.0
        assert config.retries == 2
        assert config.strict
        assert config.checkpoint_dir == str(tmp_path)
        # a zero timeout means "no budget"
        assert main(["table2", "--scale", "smoke", "--timeout", "0"]) == 0
        assert current_config().timeout_s is None

    def test_negative_timeout_exits(self):
        with pytest.raises(SystemExit):
            main(["table2", "--scale", "smoke", "--timeout", "-1"])

    def test_session_script(self, tmp_path, capsys):
        script = tmp_path / "edits.eco"
        script.write_text("info\n"
                          "solve\n"
                          "move-ff ff0 12 34\n"
                          "solve\n"
                          "set d_th_um 200\n"
                          "solve\n")
        assert main(["session", "b11", "0", "--script", str(script),
                     "--verify"]) == 0
        out = capsys.readouterr().out
        assert "session: b11_die0 loaded" in out
        assert "[solve 1]" in out and "[solve 3]" in out
        assert out.count("verify=ok") == 3
        assert "MISMATCH" not in out

    def test_session_bad_edit_exits(self, tmp_path, capsys):
        script = tmp_path / "bad.eco"
        script.write_text("move-ff no_such_ff 0 0\n")
        assert main(["session", "b11", "0",
                     "--script", str(script)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_tables_alias(self, capsys, monkeypatch):
        import repro.cli as cli
        monkeypatch.setattr(cli, "_EXPORT_ORDER", ("table2",))
        assert main(["--scale", "smoke", "tables"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_export(self, tmp_path, capsys, monkeypatch):
        # export the two cheap artifacts only (the full set is the
        # benchmark harness's job)
        import repro.cli as cli
        monkeypatch.setattr(cli, "_EXPORT_ORDER", ("table2", "figure7"))
        target = tmp_path / "results.md"
        assert main(["--scale", "smoke", "export", str(target)]) == 0
        text = target.read_text()
        assert "# Regenerated results" in text
        assert "table2" in text and "figure7" in text


class _FakeStdin:
    """Non-tty stdin whose readline can be scripted to raise."""

    def __init__(self, exc=None):
        self.exc = exc

    def isatty(self):
        return False

    def readline(self):
        if self.exc is not None:
            raise self.exc
        return ""  # EOF


class TestSessionInterrupt:
    def test_ctrl_c_exits_130_on_a_fresh_line(self, monkeypatch, capsys):
        monkeypatch.setattr(sys, "stdin",
                            _FakeStdin(KeyboardInterrupt()))
        assert main(["session", "b11", "0"]) == 130
        out = capsys.readouterr().out
        assert out.endswith("\n")  # terminal left on a fresh line

    def test_eof_exits_cleanly_zero(self, monkeypatch, capsys):
        monkeypatch.setattr(sys, "stdin", _FakeStdin())
        assert main(["session", "b11", "0"]) == 0
        assert "session: b11_die0 loaded" in capsys.readouterr().out
