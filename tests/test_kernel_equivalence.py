"""Equivalence of the kernelized hot loops with their reference forms.

Three kernels were specialized for speed (DESIGN.md §6): the op-tape
block simulator, the reusable STA context, and the grid-indexed graph
sweep. Each must be *byte-identical* to the straightforward
implementation; these tests pin that down on random circuits and on a
real die.
"""

import dataclasses
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.backend import numpy_available
from repro.runtime.config import configure

from repro.atpg.sim import CompiledCircuit
from repro.bench.generator import generate_die
from repro.bench.itc99 import die_profile
from repro.core.config import Scenario, WcmConfig
from repro.core.graph import build_wcm_graph
from repro.core.problem import build_problem, tight_clock_for
from repro.dft.scan import stitch_scan_chains
from repro.dft.testview import build_prebond_test_view
from repro.netlist.core import PortKind
from repro.place.placer import place_die
from repro.sta.constraints import ClockConstraint
from repro.sta.timer import TimingAnalyzer, TimingContext, default_case
from repro.util.rng import DeterministicRng

from tests.test_properties import random_circuit

_WIDTH = 64
_MASK = (1 << _WIDTH) - 1
_CLOCK = ClockConstraint(period_ps=900.0)


@pytest.fixture(scope="module", params=["python", "numpy"], autouse=True)
def kernel_backend(request):
    """Every equivalence test runs once per kernel backend: the numpy
    kernels must match the oracles exactly as the python ones do."""
    if request.param == "numpy" and not numpy_available():
        pytest.skip("numpy not installed")
    configure(backend=request.param)
    yield request.param
    configure(backend="python")


def _compiled(seed: int, n_gates: int = 30, n_inputs: int = 5):
    netlist = random_circuit(seed, n_gates, n_inputs)
    return CompiledCircuit(build_prebond_test_view(netlist))


# ---------------------------------------------------------------------------
# Op-tape block simulator vs the per-gate reference interpreter
# ---------------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_tape_matches_reference_interpreter(seed):
    circuit = _compiled(seed)
    rng = DeterministicRng(seed)
    words = [rng.getrandbits(_WIDTH) for _ in range(circuit.input_count)]
    assert circuit.simulate(words, _MASK) \
        == circuit.simulate_reference(words, _MASK)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_tape_buffer_reuse_is_transparent(seed):
    """Reusing one values buffer across blocks changes nothing."""
    circuit = _compiled(seed)
    rng = DeterministicRng(seed)
    buffer = circuit.make_buffer()
    for _ in range(3):
        words = [rng.getrandbits(_WIDTH) for _ in range(circuit.input_count)]
        reused = circuit.simulate(words, _MASK, out=buffer)
        assert reused is buffer
        assert reused == circuit.simulate_reference(words, _MASK)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_event_propagation_matches_full_resimulation(seed):
    """Event-driven stem propagation == brute-force faulty resim."""
    circuit = _compiled(seed)
    rng = DeterministicRng(seed)
    words = [rng.getrandbits(_WIDTH) for _ in range(circuit.input_count)]
    good = circuit.simulate(words, _MASK)
    observed = circuit.observed

    for gate in circuit.gates:
        stem = gate.out
        for value in (0, 1):
            forced = _MASK if value else 0
            # Brute force: re-evaluate the whole circuit with the stem
            # pinned to the fault value.
            faulty = list(good)
            faulty[stem] = forced
            for g in circuit.gates:
                if g.out == stem:
                    continue
                faulty[g.out] = g.op([faulty[i] for i in g.ins], _MASK)
            expected = 0
            for nid in observed:
                expected |= (faulty[nid] ^ good[nid])
            expected &= _MASK
            if forced == (good[stem] & _MASK):
                expected = 0  # never activated
            assert circuit.propagate_stem(good, stem, value, _MASK) \
                == expected


# ---------------------------------------------------------------------------
# Reusable STA context vs a fresh analyzer per call
# ---------------------------------------------------------------------------
def _results_equal(a, b):
    assert a.arrival_ps == b.arrival_ps
    assert a.required_ps == b.required_ps
    assert a.net_load_ff == b.net_load_ff
    assert a.critical_path_ps == b.critical_path_ps
    assert a.port_slack_ps == b.port_slack_ps
    assert [(e.kind, e.name, e.arrival_ps, e.required_ps)
            for e in a.endpoints] \
        == [(e.kind, e.name, e.arrival_ps, e.required_ps)
            for e in b.endpoints]


def test_context_reuse_matches_fresh_analyzer(medium_die):
    context = TimingContext(medium_die)
    for test_mode in (0, 1, 0, 1):  # repeated calls over one context
        case = default_case(medium_die, test_mode=test_mode)
        reused = context.analyze(_CLOCK, case=case)
        fresh = TimingAnalyzer(medium_die).analyze(_CLOCK, case=case)
        _results_equal(reused, fresh)


def test_context_invalidate_nets_tracks_in_place_moves():
    # A private die: this test moves an instance in place.
    die = generate_die(die_profile("b11", 0), seed=2019)
    place_die(die)
    stitch_scan_chains(die)
    context = TimingContext(die)
    context.analyze(_CLOCK)  # force preparation

    # Move a combinational instance; every net on its pins changes
    # either its wire delays (as a sink) or its load (as a driver).
    inst = next(i for i in die.instances.values()
                if i.output_net() is not None)
    inst.x += 37.0
    inst.y += 11.0
    context.invalidate_nets(set(inst.connections.values()))

    reused = context.analyze(_CLOCK)
    fresh = TimingAnalyzer(die).analyze(_CLOCK)
    _results_equal(reused, fresh)


def test_context_full_invalidation(medium_die):
    context = TimingContext(medium_die)
    before = context.analyze(_CLOCK)
    context.invalidate()
    _results_equal(before, context.analyze(_CLOCK))


# ---------------------------------------------------------------------------
# Grid-indexed edge sweep vs the brute-force O(n^2) sweep
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def timed_problem(medium_die):
    problem = build_problem(medium_die, already_prepared=True)
    return problem.retime(tight_clock_for(problem))


@pytest.mark.parametrize("kind", [PortKind.TSV_INBOUND,
                                  PortKind.TSV_OUTBOUND])
@pytest.mark.parametrize("d_th_fraction", [0.05, 0.15, 0.4, 1.0])
def test_grid_sweep_matches_brute_force(timed_problem, kind, d_th_fraction):
    period = timed_problem.timing.constraint.period_ps
    scenario = Scenario.performance_optimized(period)
    config = dataclasses.replace(WcmConfig.ours(scenario),
                                 d_th_fraction=d_th_fraction,
                                 d_th_um=math.inf)
    ffs = timed_problem.scan_ffs
    grid = build_wcm_graph(timed_problem, kind, ffs, config, use_grid=True)
    brute = build_wcm_graph(timed_problem, kind, ffs, config, use_grid=False)
    assert grid.adjacency == brute.adjacency
    assert grid.stats == brute.stats
    assert grid.nodes == brute.nodes
    assert grid.excluded_tsvs == brute.excluded_tsvs


# ---------------------------------------------------------------------------
# Cross-backend byte-identity on every topology family
# ---------------------------------------------------------------------------
def _family_solve_fp(spec):
    """(result fingerprint, stable counters, manifest fingerprint) of a
    full WCM solve of *spec* under the currently configured backend —
    the same identity surface the eco differential check pins."""
    from repro.core.flow import run_wcm_flow
    from repro.core.session import result_fingerprint
    from repro.runtime import instrument
    from repro.runtime.trace import manifest_fingerprint
    from repro.verify.checks import _ECO_VOLATILE_COUNTERS

    problem = spec.build_problem()
    config = spec.build_config(problem)
    with instrument.collect() as report:
        result = run_wcm_flow(problem, config)
    result_fp = result_fingerprint(result)
    counters = {name: value for name, value in sorted(
                    report.counters.items())
                if not name.startswith(_ECO_VOLATILE_COUNTERS)}
    manifest_fp = manifest_fingerprint({
        "schema": "eco", "label": f"family:{spec.family}",
        "config": None, "seed": None, "scale": None,
        "metrics": counters, "result_fingerprint": result_fp,
    })
    return result_fp, counters, manifest_fp


@pytest.mark.parametrize("family", ["grid", "chain", "ring", "star",
                                    "htree", "soc"])
def test_families_byte_identical_across_backends(kernel_backend, family):
    """python and numpy backends produce byte-identical results,
    rejection stats and manifest fingerprints on every family."""
    if kernel_backend != "python":
        pytest.skip("cross-backend pair runs once, from the python leg")
    if not numpy_available():
        pytest.skip("numpy not installed")
    from repro.verify.instances import InstanceSpec

    spec = InstanceSpec(seed=9, family=family, gates=28, ffs=3,
                        tsv_in=3, tsv_out=3)
    configure(backend="python")
    python_fp = _family_solve_fp(spec)
    configure(backend="numpy")
    numpy_fp = _family_solve_fp(spec)
    configure(backend="python")
    assert python_fp == numpy_fp


def test_grid_sweep_zero_threshold_rejects_all_pairs(timed_problem):
    period = timed_problem.timing.constraint.period_ps
    config = dataclasses.replace(
        WcmConfig.ours(Scenario.performance_optimized(period)),
        d_th_fraction=None, d_th_um=0.0)
    ffs = timed_problem.scan_ffs
    grid = build_wcm_graph(timed_problem, PortKind.TSV_INBOUND, ffs, config,
                           use_grid=True)
    brute = build_wcm_graph(timed_problem, PortKind.TSV_INBOUND, ffs, config,
                            use_grid=False)
    assert grid.stats == brute.stats
    assert grid.stats.edges == 0
