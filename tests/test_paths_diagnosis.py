"""Tests for critical-path reporting and fault diagnosis."""

import pytest

from repro.atpg.diagnosis import FaultDiagnoser
from repro.atpg.engine import AtpgConfig, AtpgEngine
from repro.atpg.faults import build_fault_list
from repro.dft.testview import build_prebond_test_view
from repro.netlist.builder import NetlistBuilder
from repro.sta.constraints import ClockConstraint
from repro.sta.paths import render_worst_paths, worst_paths
from repro.sta.timer import TimingAnalyzer
from repro.util.errors import AtpgError


class TestCriticalPaths:
    def test_path_structure(self, tiny_netlist):
        result = TimingAnalyzer(tiny_netlist).analyze(
            ClockConstraint(period_ps=1000.0))
        paths = worst_paths(tiny_netlist, result, count=2)
        assert paths
        worst = paths[0]
        assert worst.slack_ps == result.worst_slack_ps
        # stages run source -> endpoint with non-decreasing arrivals
        arrivals = [stage.arrival_ps for stage in worst.stages]
        assert arrivals == sorted(arrivals)

    def test_stage_delays_sum_to_arrival(self, tiny_netlist):
        result = TimingAnalyzer(tiny_netlist).analyze(
            ClockConstraint(period_ps=1000.0))
        worst = worst_paths(tiny_netlist, result, count=1)[0]
        total = sum(stage.stage_delay_ps for stage in worst.stages)
        start = worst.stages[0].arrival_ps - worst.stages[0].stage_delay_ps
        assert start + total == pytest.approx(worst.stages[-1].arrival_ps)

    def test_violating_only_filter(self, tiny_netlist):
        timer = TimingAnalyzer(tiny_netlist)
        relaxed = timer.analyze(ClockConstraint(period_ps=100000.0))
        assert worst_paths(tiny_netlist, relaxed, count=3,
                           violating_only=True) == []
        squeezed = timer.analyze(ClockConstraint(period_ps=30.0))
        violating = worst_paths(tiny_netlist, squeezed, count=3,
                                violating_only=True)
        assert violating and all(p.slack_ps < 0 for p in violating)

    def test_render_on_generated_die(self, small_die):
        result = TimingAnalyzer(small_die).analyze(
            ClockConstraint(period_ps=2000.0))
        text = render_worst_paths(small_die, result, count=2)
        assert "slack" in text and "arrival" in text


@pytest.fixture(scope="module")
def diagnosis_setup():
    """A small circuit, its ATPG pattern set, and a diagnoser."""
    builder = NetlistBuilder("diag")
    a = builder.add_input("a")
    b = builder.add_input("b")
    c = builder.add_input("c")
    n1 = builder.add_gate("NAND2_X1", [a, b], name="g1")
    n2 = builder.add_gate("XOR2_X1", [n1, c], name="g2")
    n3 = builder.add_gate("OR2_X1", [n1, n2], name="g3")
    builder.add_output("po0", n2)
    builder.add_output("po1", n3)
    view = build_prebond_test_view(builder.finish())
    engine = AtpgEngine(view, AtpgConfig(seed=5, block_width=32,
                                         max_random_blocks=4,
                                         podem_fault_limit=100))
    result = engine.run()
    diagnoser = FaultDiagnoser(view, result.patterns,
                               fault_list=engine.fault_list)
    return diagnoser, engine


class TestDiagnosis:
    def test_empty_patterns_rejected(self, diagnosis_setup):
        diagnoser, _engine = diagnosis_setup
        with pytest.raises(AtpgError):
            FaultDiagnoser(diagnoser.view, [])

    def test_self_diagnosis_ranks_injected_fault_first(self,
                                                       diagnosis_setup):
        """Simulate a defective die with a known fault; the diagnoser
        must rank that fault (or an equivalent one) at score 1.0."""
        diagnoser, _engine = diagnosis_setup
        ranked_first = 0
        tried = 0
        for index in range(len(diagnoser.faults)):
            syndrome = diagnoser.simulate_defect(index)
            if not syndrome:
                continue
            tried += 1
            result = diagnoser.diagnose(syndrome, top=5)
            assert result.best is not None
            assert result.best.score == pytest.approx(1.0)
            described = {c.fault.describe() for c in result.candidates
                         if c.score == result.best.score}
            if diagnoser.faults[index].describe() in described:
                ranked_first += 1
            if tried >= 12:
                break
        # the injected fault itself must be among the exact matches in
        # the vast majority of cases (equivalence classes allow ties)
        assert ranked_first >= tried * 0.9

    def test_empty_syndrome_yields_no_candidates(self, diagnosis_setup):
        diagnoser, _engine = diagnosis_setup
        result = diagnoser.diagnose(frozenset())
        assert result.best is None

    def test_scores_bounded(self, diagnosis_setup):
        diagnoser, _engine = diagnosis_setup
        syndrome = diagnoser.simulate_defect(0) or \
            diagnoser.simulate_defect(1)
        result = diagnoser.diagnose(syndrome, top=50)
        for candidate in result.candidates:
            assert 0.0 < candidate.score <= 1.0
            assert candidate.matched_failures <= candidate.predicted_failures

    def test_diagnosis_on_generated_die(self, small_test_view):
        engine = AtpgEngine(small_test_view, AtpgConfig(
            seed=5, block_width=64, max_random_blocks=4,
            podem_fault_limit=0))
        result = engine.run()
        diagnoser = FaultDiagnoser(small_test_view, result.patterns,
                                   fault_list=engine.fault_list)
        syndrome = diagnoser.simulate_defect(3)
        if syndrome:
            diagnosis = diagnoser.diagnose(syndrome, top=3)
            assert diagnosis.best is not None
            assert diagnosis.best.score > 0.5
