"""Incremental :class:`WcmSession` vs cold ``run_wcm_flow``.

Every solve of a session must be byte-identical to a cold solve of the
same edited netlist — these tests pin that contract across the whole
edit vocabulary, plus the fallback triggers and reuse telemetry that
the incremental path promises.
"""

import pytest

from repro.core.flow import run_wcm_flow
from repro.core.problem import build_problem
from repro.core.session import (AddTsv, MoveFf, MoveTsv, RemoveTsv,
                                SetThreshold, WcmSession)
from repro.runtime.backend import numpy_available
from repro.runtime.config import configure
from repro.netlist.core import PortKind
from repro.runtime import instrument
from repro.util.errors import ConfigError
from repro.verify.checks import _eco_result_fp
from repro.verify.instances import InstanceSpec


@pytest.fixture(scope="module", params=["python", "numpy"], autouse=True)
def kernel_backend(request):
    if request.param == "numpy" and not numpy_available():
        pytest.skip("numpy not installed")
    configure(backend=request.param)
    yield request.param
    configure(backend="python")


SPEC = InstanceSpec(seed=77, gates=36, ffs=5, tsv_in=4, tsv_out=3)


def fresh_session(**kwargs):
    problem = SPEC.build_problem()
    config = SPEC.build_config(problem)
    return WcmSession(problem.netlist.clone(), config,
                      already_prepared=True, **kwargs)


def cold_fp(session):
    """Fingerprint of a cold solve over the session's current die."""
    problem = build_problem(session.netlist.clone(),
                            clock=session.config.scenario.clock,
                            already_prepared=True)
    return _eco_result_fp(run_wcm_flow(problem, session.config))


def die_span(session):
    xs = [inst.x for inst in session.netlist.instances.values()]
    return (max(xs) - min(xs)) or 100.0


class TestByteIdentity:
    def test_initial_solve_matches_cold(self):
        session = fresh_session()
        assert _eco_result_fp(session.solve()) == cold_fp(session)

    def test_edit_stream_matches_cold(self):
        """Every edit kind, interleaved, solved after each step."""
        session = fresh_session()
        session.solve()
        span = die_span(session)
        ff = session.netlist.scan_flip_flops()[0]
        tsv = next(p for p in session.netlist.ports.values() if p.is_tsv)
        steps = [
            MoveFf(ff.name, ff.x + span * 0.01, ff.y + 1.0),
            MoveTsv(tsv.name, tsv.x + span * 0.3, tsv.y),
            SetThreshold(d_th_um=span * 0.4),
            AddTsv("session_test_tsv", PortKind.TSV_INBOUND,
                   x=span * 0.5, y=span * 0.5),
            RemoveTsv("session_test_tsv"),
            SetThreshold(cov_th=0.5),
        ]
        for edit in steps:
            session.apply(edit)
            got = _eco_result_fp(session.solve())
            assert got == cold_fp(session), f"diverged after {edit!r}"

    def test_inverse_edit_restores_result(self):
        session = fresh_session()
        base = _eco_result_fp(session.solve())
        ff = session.netlist.scan_flip_flops()[0]
        x0, y0 = ff.x, ff.y
        session.apply(MoveFf(ff.name, x0 + 12.0, y0 + 7.0))
        session.solve()
        session.apply(MoveFf(ff.name, x0, y0))
        assert _eco_result_fp(session.solve()) == base

    def test_batched_edits_single_solve(self):
        """Several queued edits collapse into one consistent solve."""
        session = fresh_session()
        session.solve()
        span = die_span(session)
        for i, ff in enumerate(session.netlist.scan_flip_flops()[:2]):
            session.apply(MoveFf(ff.name, ff.x + 2.0 * (i + 1), ff.y))
        session.apply(SetThreshold(d_th_um=span * 0.6))
        assert _eco_result_fp(session.solve()) == cold_fp(session)


class TestFallback:
    def test_structural_edit_falls_back(self):
        session = fresh_session()
        session.solve()
        span = die_span(session)
        session.apply(AddTsv("fb_tsv", PortKind.TSV_INBOUND,
                             x=span * 0.25, y=span * 0.25))
        session.solve()
        assert session.last_fallback == "structural"
        session.apply(RemoveTsv("fb_tsv"))
        session.solve()
        assert session.last_fallback == "structural"

    def test_dirty_frac_falls_back(self):
        session = fresh_session(fallback_ratio=0.0)
        session.solve()
        ff = session.netlist.scan_flip_flops()[0]
        session.apply(MoveFf(ff.name, ff.x + 1.0, ff.y))
        session.solve()
        assert session.last_fallback == "dirty_frac"

    def test_nudge_stays_incremental(self):
        session = fresh_session()
        session.solve()
        ff = session.netlist.scan_flip_flops()[0]
        session.apply(MoveFf(ff.name, ff.x + 0.5, ff.y + 0.5))
        with instrument.collect() as report:
            session.solve()
        # "restitch" is still the incremental path (chain order changed
        # in place); only structural/dirty_frac rebuild the problem.
        assert session.last_fallback in (None, "restitch")
        assert 0.0 < session.last_dirty_frac <= session.fallback_ratio
        assert report.counters.get("session.fallback", 0) == 0

    def test_fallback_still_matches_cold(self):
        session = fresh_session(fallback_ratio=0.0)
        session.solve()
        ff = session.netlist.scan_flip_flops()[0]
        session.apply(MoveFf(ff.name, ff.x + 3.0, ff.y))
        assert _eco_result_fp(session.solve()) == cold_fp(session)


class TestTelemetry:
    def test_edit_counter(self):
        session = fresh_session()
        ff = session.netlist.scan_flip_flops()[0]
        with instrument.collect() as report:
            session.apply(MoveFf(ff.name, ff.x + 1.0, ff.y))
            session.apply(SetThreshold(cov_th=0.6))
        assert report.counters.get("session.edits") == 2
        assert session.edit_count == 2

    def test_graph_replay_counter(self):
        """A pure-move edit replays cached sharing graphs instead of
        rebuilding them (structural estimator mode only)."""
        session = fresh_session()
        session.solve()
        ff = session.netlist.scan_flip_flops()[0]
        session.apply(MoveFf(ff.name, ff.x + 0.5, ff.y))
        with instrument.collect() as report:
            session.solve()
        if session.config.estimator_mode == "structural" \
                and session.last_fallback in (None, "restitch"):
            assert report.counters.get("session.graph_replays", 0) >= 1


class TestEditValidation:
    def test_move_ff_rejects_non_ff(self):
        session = fresh_session()
        gate = next(i for i in session.netlist.instances.values()
                    if not i.is_scan)
        with pytest.raises(ConfigError):
            session.apply(MoveFf(gate.name, 0.0, 0.0))

    def test_move_tsv_rejects_non_tsv(self):
        session = fresh_session()
        port = next(p for p in session.netlist.ports.values()
                    if not p.is_tsv)
        with pytest.raises(ConfigError):
            session.apply(MoveTsv(port.name, 0.0, 0.0))
