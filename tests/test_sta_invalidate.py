"""Targeted ``TimingContext.invalidate_nets`` coverage.

The incremental session leans on subset invalidation: after a position
change, only the nets incident to the moved object are refreshed, and
the next ``analyze``/``analyze_delta`` must be byte-identical to a
fresh context built over the moved netlist. On the numpy backend the
baked ``_VectorPlan`` arrays must be dropped and rebuilt too — a stale
plan would silently reuse pre-move wire delays.
"""

import pytest

from repro.sta.constraints import ClockConstraint, UNCONSTRAINED
from repro.sta.timer import TimingContext, default_case
from repro.runtime.backend import numpy_available
from repro.runtime.config import configure


@pytest.fixture(scope="module", params=["python", "numpy"], autouse=True)
def kernel_backend(request):
    if request.param == "numpy" and not numpy_available():
        pytest.skip("numpy not installed")
    configure(backend=request.param)
    yield request.param
    configure(backend="python")


def _incident_nets(inst):
    return sorted(set(inst.connections.values()))


def _movable_gate(netlist):
    """A placed combinational gate with at least two connections."""
    return next(inst for inst in netlist.instances.values()
                if not inst.is_scan and len(inst.connections) >= 2)


def assert_same_timing(got, want):
    assert got.arrival_ps == want.arrival_ps
    assert got.required_ps == want.required_ps
    assert got.net_load_ff == want.net_load_ff
    assert got.endpoints == want.endpoints
    assert got.critical_path_ps == want.critical_path_ps


class TestInvalidateNets:
    def test_subset_invalidation_matches_fresh(self, medium_die,
                                               kernel_backend):
        netlist = medium_die.clone()
        context = TimingContext(netlist)
        base = context.analyze()
        if kernel_backend == "numpy":
            assert context._vplan is not None, \
                "caseless analyze should bake a _VectorPlan"

        gate = _movable_gate(netlist)
        gate.x += 180.0
        gate.y += 95.0
        context.invalidate_nets(_incident_nets(gate))
        if kernel_backend == "numpy":
            assert context._vplan is None, \
                "invalidate_nets must drop the baked _VectorPlan"

        fresh = TimingContext(netlist).analyze()
        assert_same_timing(context.analyze(), fresh)
        # the move must actually have changed something, or the test
        # proves nothing
        assert fresh.arrival_ps != base.arrival_ps

    def test_analyze_delta_after_invalidate(self, medium_die):
        netlist = medium_die.clone()
        context = TimingContext(netlist)
        constraint = ClockConstraint(
            period_ps=context.analyze().critical_path_ps * 0.9)
        previous = context.analyze(constraint)

        gate = _movable_gate(netlist)
        gate.x += 150.0
        gate.y -= 60.0
        dirty = _incident_nets(gate)
        context.invalidate_nets(dirty)
        delta = context.analyze_delta(constraint, previous=previous,
                                      dirty_nets=dirty)
        fresh = TimingContext(netlist).analyze(constraint)
        assert_same_timing(delta, fresh)

    def test_port_move_with_case_analysis(self, medium_die):
        netlist = medium_die.clone()
        context = TimingContext(netlist)
        case = default_case(netlist, test_mode=1)
        port = next(p for p in netlist.ports.values()
                    if p.is_tsv and p.net is not None)
        previous = context.analyze(UNCONSTRAINED, case=case)

        port.x += 220.0
        port.y += 40.0
        context.invalidate_nets([port.net])
        delta = context.analyze_delta(UNCONSTRAINED, case=case,
                                      previous=previous,
                                      dirty_nets=[port.net])
        fresh = TimingContext(netlist).analyze(UNCONSTRAINED, case=case)
        assert_same_timing(delta, fresh)

    def test_vplan_rebuilt_and_reused(self, medium_die, kernel_backend):
        if kernel_backend != "numpy":
            pytest.skip("vector plan exists only on the numpy backend")
        netlist = medium_die.clone()
        context = TimingContext(netlist)
        context.analyze()
        gate = _movable_gate(netlist)
        gate.x += 75.0
        context.invalidate_nets(_incident_nets(gate))
        rebuilt = context.analyze()
        assert context._vplan is not None
        assert_same_timing(rebuilt, TimingContext(netlist).analyze())
