"""Tests for the overlapped-cone testability estimator."""

import pytest

from repro.core.config import Scenario, WcmConfig
from repro.core.testability import (
    OverlapEstimate,
    OverlapTestabilityEstimator,
    build_ideal_wrapped_view,
)
from repro.netlist.core import PortKind


@pytest.fixture(scope="module")
def estimator(medium_problem):
    config = WcmConfig.ours(Scenario.area_optimized(),
                            estimator_mode="faultsim")
    return OverlapTestabilityEstimator(medium_problem, config), \
        medium_problem


def overlapped_pairs(problem, kind, limit=6):
    tsvs = problem.tsvs_of_kind(kind)
    pairs = []
    for i, a in enumerate(tsvs):
        for b in tsvs[i + 1:]:
            region = problem.cones.overlap(a, b, kind)
            if region:
                pairs.append((a, b, region))
                if len(pairs) >= limit:
                    return pairs
    return pairs


class TestIdealView:
    def test_inbound_tsvs_controllable(self, medium_problem):
        view = build_ideal_wrapped_view(medium_problem.netlist)
        inbound_nets = {p.net for p in medium_problem.netlist.inbound_tsvs()}
        assert inbound_nets <= set(view.control_nets)

    def test_outbound_tsvs_observable(self, medium_problem):
        view = build_ideal_wrapped_view(medium_problem.netlist)
        observed = {net for _l, net in view.observe_nets}
        outbound_nets = {p.net
                         for p in medium_problem.netlist.outbound_tsvs()}
        assert outbound_nets <= observed


class TestEstimates:
    def test_estimates_are_bounded_and_cached(self, estimator):
        est, problem = estimator
        pairs = overlapped_pairs(problem, PortKind.TSV_INBOUND)
        assert pairs, "expected intra-cluster overlapped pairs"
        for a, b, region in pairs:
            result = est.estimate(a, b, PortKind.TSV_INBOUND, region)
            assert 0.0 <= result.coverage_drop <= 1.0
            assert result.extra_patterns >= 0
            again = est.estimate(a, b, PortKind.TSV_INBOUND, region)
            assert again is result  # cached object

    def test_cache_is_symmetric(self, estimator):
        est, problem = estimator
        pairs = overlapped_pairs(problem, PortKind.TSV_OUTBOUND, limit=2)
        for a, b, region in pairs:
            first = est.estimate(a, b, PortKind.TSV_OUTBOUND, region)
            swapped = est.estimate(b, a, PortKind.TSV_OUTBOUND, region)
            assert swapped is first

    def test_structural_mode_scales_with_overlap(self, medium_problem):
        config = WcmConfig.ours(Scenario.area_optimized(),
                                estimator_mode="structural")
        est = OverlapTestabilityEstimator(medium_problem, config)
        small = est._structural_estimate(frozenset({"g1"}))
        big = est._structural_estimate(frozenset(f"g{i}" for i in range(40)))
        assert big.coverage_drop > small.coverage_drop
        assert big.extra_patterns >= small.extra_patterns

    def test_budget_falls_back_to_structural(self, medium_problem):
        config = WcmConfig.ours(Scenario.area_optimized(),
                                estimator_mode="faultsim",
                                estimator_budget=0)
        est = OverlapTestabilityEstimator(medium_problem, config)
        pairs = overlapped_pairs(medium_problem, PortKind.TSV_INBOUND,
                                 limit=1)
        a, b, region = pairs[0]
        result = est.estimate(a, b, PortKind.TSV_INBOUND, region)
        assert result.mode == "structural"

    def test_within_threshold_logic(self):
        estimate = OverlapEstimate(coverage_drop=0.004, extra_patterns=9,
                                   mode="structural")
        assert estimate.within(0.005, 10)
        assert not estimate.within(0.003, 10)
        assert not estimate.within(0.005, 9)
