"""Tests for placement and wirelength."""

import pytest

from repro.bench.generator import generate_die
from repro.bench.itc99 import die_profile
from repro.place.placer import PlacementConfig, place_die
from repro.place.wirelength import hpwl_of_net, manhattan, total_hpwl, wire_length_um


@pytest.fixture(scope="module")
def placed():
    netlist = generate_die(die_profile("b12", 1), seed=3)
    result = place_die(netlist, PlacementConfig(seed=3))
    return netlist, result


class TestPlacement:
    def test_everything_inside_die(self, placed):
        netlist, result = placed
        for inst in netlist.instances.values():
            assert 0 <= inst.x <= result.die_width_um
            assert 0 <= inst.y <= result.die_height_um
        for port in netlist.ports.values():
            assert 0 <= port.x <= result.die_width_um
            assert 0 <= port.y <= result.die_height_um

    def test_tsv_sites_distinct(self, placed):
        netlist, _ = placed
        tsv_positions = [(p.x, p.y) for p in netlist.ports.values()
                         if p.is_tsv]
        assert len(set(tsv_positions)) == len(tsv_positions)

    def test_cell_sites_distinct(self, placed):
        netlist, _ = placed
        positions = [(i.x, i.y) for i in netlist.instances.values()]
        assert len(set(positions)) == len(positions)

    def test_deterministic(self):
        a = generate_die(die_profile("b11", 0), seed=3)
        b = generate_die(die_profile("b11", 0), seed=3)
        place_die(a, PlacementConfig(seed=3))
        place_die(b, PlacementConfig(seed=3))
        assert all(a.instances[n].x == b.instances[n].x
                   for n in a.instances)

    def test_placement_beats_random_on_hpwl(self):
        """Force-directed refinement should do better than no iterations."""
        refined = generate_die(die_profile("b12", 1), seed=3)
        place_die(refined, PlacementConfig(seed=3, iterations=12))
        shuffled = generate_die(die_profile("b12", 1), seed=3)
        place_die(shuffled, PlacementConfig(seed=3, iterations=0))
        assert total_hpwl(refined) < total_hpwl(shuffled)

    def test_die_area_tracks_cell_area(self):
        small = generate_die(die_profile("b11", 0), seed=3)
        large = generate_die(die_profile("b12", 1), seed=3)
        small_result = place_die(small)
        large_result = place_die(large)
        assert large_result.die_width_um > small_result.die_width_um


class TestWirelength:
    def test_manhattan(self):
        assert manhattan((0, 0), (3, 4)) == 7
        assert manhattan((1, 1), (1, 1)) == 0

    def test_wire_length_between_objects(self, placed):
        netlist, _ = placed
        ff = netlist.scan_flip_flops()[0]
        tsv = netlist.inbound_tsvs()[0]
        distance = wire_length_um(netlist, ff.name, tsv.name)
        assert distance >= 0

    def test_hpwl_zero_for_single_endpoint_nets(self, placed):
        netlist, _ = placed
        for net in netlist.nets.values():
            endpoints = len(net.sinks) + (1 if net.driver else 0)
            if endpoints < 2:
                assert hpwl_of_net(netlist, net.name) == 0.0
                break

    def test_total_hpwl_positive(self, placed):
        netlist, _ = placed
        assert total_hpwl(netlist) > 0
