"""Tests for whole-stack generation (bench.stack)."""

import pytest

from repro.bench.itc99 import profiles_for_circuit
from repro.bench.stack import generate_stack


class TestGeneratedStackCalibration:
    @pytest.fixture(scope="class")
    def stack(self):
        return generate_stack("b12", seed=8)

    def test_die_profiles_match_table(self, stack):
        for profile, die in zip(profiles_for_circuit("b12"), stack.dies):
            stats = die.stats()
            assert stats["gates"] == profile.gates
            assert stats["inbound_tsvs"] == profile.inbound_tsvs
            assert stats["outbound_tsvs"] == profile.outbound_tsvs

    def test_every_bonded_link_unique_endpoints(self, stack):
        sources = [(l.source_die, l.source_port) for l in stack.links]
        targets = [(l.target_die, l.target_port) for l in stack.links
                   if not l.is_external]
        assert len(set(sources)) == len(sources)
        assert len(set(targets)) == len(targets)

    def test_no_self_links(self, stack):
        for link in stack.links:
            if not link.is_external:
                assert link.source_die != link.target_die

    def test_all_inbounds_bonded_when_possible(self, stack):
        total_in = sum(len(d.inbound_tsvs()) for d in stack.dies)
        total_out = sum(len(d.outbound_tsvs()) for d in stack.dies)
        bonded = sum(1 for l in stack.links if not l.is_external)
        assert bonded == min(total_in, total_out)

    def test_deterministic(self):
        a = generate_stack("b12", seed=8)
        b = generate_stack("b12", seed=8)
        assert [(l.name, l.source_die, l.target_die) for l in a.links] \
            == [(l.name, l.source_die, l.target_die) for l in b.links]

    def test_tsv_count_matches_summary(self, stack):
        summary = stack.summary()
        assert len(summary) == 4
        assert stack.tsv_count() == sum(
            s["inbound_tsvs"] + s["outbound_tsvs"] for s in summary)
