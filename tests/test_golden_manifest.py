"""Golden-manifest regression: the table3 smoke run is pinned.

``tests/golden/table3_smoke_manifest.json`` is the manifest of
``repro table3 --scale smoke`` with the environment-dependent sections
(timings, git, volatile metrics) stripped and the content fingerprints
kept. A fresh run must gate cleanly against it — any change to the
flow, partitioner, STA or metrics wiring that shifts the computation
shows up here as a readable diff, not as a silent drift.

The run happens in a subprocess so the per-process memo caches warmed
by other tests cannot suppress the metric observations.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.runtime.trace import load_manifest, manifest_fingerprint

GOLDEN = Path(__file__).parent / "golden" / "table3_smoke_manifest.json"
MUTATED = Path(__file__).parent / "golden" / \
    "table3_smoke_manifest_mutated.json"
REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def fresh_manifest(tmp_path_factory):
    """Manifest of a hermetic `repro table3 --scale smoke` run."""
    trace_dir = tmp_path_factory.mktemp("table3-trace")
    env = dict(os.environ)
    env.pop("REPRO_SCALE", None)
    env.pop("REPRO_JOBS", None)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "table3", "--scale", "smoke",
         "--trace-dir", str(trace_dir)],
        env=env, capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    return trace_dir / "manifest-table3.json"


def test_golden_fingerprint_is_self_consistent():
    payload = json.loads(GOLDEN.read_text())
    assert manifest_fingerprint(payload) == payload["fingerprint"]


def test_fresh_run_gates_clean_against_golden(fresh_manifest, capsys):
    assert main(["bench", "gate", str(fresh_manifest),
                 "--golden", str(GOLDEN)]) == 0
    out = capsys.readouterr().out
    assert "gate: OK" in out
    assert "fingerprint" in out  # the identity check actually ran


def test_fresh_run_rejected_by_mutated_golden(fresh_manifest, capsys):
    assert main(["bench", "gate", str(fresh_manifest),
                 "--golden", str(MUTATED)]) == 1
    out = capsys.readouterr().out
    assert "gate: FAIL" in out
    # the diff names the metric that moved, with both values
    assert "clique.merges" in out
    assert "expected" in out and "got" in out


def test_fresh_manifest_matches_golden_fingerprint(fresh_manifest):
    fresh = load_manifest(fresh_manifest)
    golden = load_manifest(GOLDEN)
    assert fresh["fingerprint"] == golden["fingerprint"]
    assert fresh["result_fingerprint"] == golden["result_fingerprint"]
