"""Tests for 3D partitioning and stack modelling."""

import pytest

from repro.bench.generator import generate_die
from repro.bench.itc99 import die_profile
from repro.bench.stack import generate_stack
from repro.netlist.core import PortKind
from repro.netlist.validate import validate_netlist
from repro.threed.model import Stack3D, TsvLink
from repro.threed.partition import PartitionConfig, bisect_instances, partition_into_stack
from repro.util.errors import PartitionError
from repro.util.rng import DeterministicRng


@pytest.fixture(scope="module")
def flat_circuit():
    """A small flat 2D circuit (b11_die1 reused as a 2D netlist)."""
    return generate_die(die_profile("b11", 1), seed=9)


class TestBisection:
    def test_balanced_split(self, flat_circuit):
        members = sorted(flat_circuit.instances.keys())
        a, b = bisect_instances(flat_circuit, members, DeterministicRng(1))
        assert abs(len(a) - len(b)) <= max(2, 0.2 * len(members))
        assert a | b == set(members)
        assert not (a & b)

    def test_cut_not_worse_than_random(self, flat_circuit):
        members = sorted(flat_circuit.instances.keys())
        rng = DeterministicRng(1)
        a, _b = bisect_instances(flat_circuit, members, rng)

        def cut_size(side):
            cut = 0
            for net in flat_circuit.nets.values():
                cells = {p.owner_name for p in net.sinks if not p.is_port}
                if net.driver is not None and not net.driver.is_port:
                    cells.add(net.driver.owner_name)
                cells &= set(members)
                if cells and (cells & side) and (cells - side):
                    cut += 1
            return cut

        shuffled = DeterministicRng(2).shuffled(members)
        random_side = set(shuffled[:len(members) // 2])
        assert cut_size(a) <= cut_size(random_side)

    def test_tiny_group_rejected(self, flat_circuit):
        with pytest.raises(PartitionError):
            bisect_instances(flat_circuit, ["ff0"], DeterministicRng(1))


class TestPartitionIntoStack:
    def test_four_die_partition(self, flat_circuit):
        stack, assignment = partition_into_stack(
            flat_circuit, PartitionConfig(num_dies=4, seed=5))
        assert stack.die_count == 4
        assert set(assignment.values()) == {0, 1, 2, 3}
        # every instance lands somewhere
        assert len(assignment) == len(flat_circuit.instances)

    def test_cut_nets_become_tsvs(self, flat_circuit):
        stack, assignment = partition_into_stack(
            flat_circuit, PartitionConfig(num_dies=2, seed=5))
        total_in = sum(len(d.inbound_tsvs()) for d in stack.dies)
        total_out = sum(len(d.outbound_tsvs()) for d in stack.dies)
        assert total_in > 0 and total_out > 0
        # one link per NEW inbound TSV (the source circuit's own TSV
        # ports carry over into the dies without links)
        original_in = len(flat_circuit.inbound_tsvs())
        assert len(stack.links) == total_in - original_in

    def test_dies_validate(self, flat_circuit):
        stack, _ = partition_into_stack(flat_circuit,
                                        PartitionConfig(num_dies=2, seed=5))
        for die in stack.dies:
            validate_netlist(die)

    def test_clock_replicated_not_tsv(self, flat_circuit):
        stack, _ = partition_into_stack(flat_circuit,
                                        PartitionConfig(num_dies=2, seed=5))
        for die in stack.dies:
            if die.flip_flops():
                clocks = die.ports_of_kind(PortKind.CLOCK)
                assert len(clocks) == 1

    def test_gate_conservation(self, flat_circuit):
        stack, _ = partition_into_stack(flat_circuit,
                                        PartitionConfig(num_dies=4, seed=5))
        assert sum(d.gate_count for d in stack.dies) \
            == flat_circuit.gate_count

    def test_non_power_of_two_rejected(self, flat_circuit):
        with pytest.raises(PartitionError):
            partition_into_stack(flat_circuit, PartitionConfig(num_dies=3))


class TestGeneratedStack:
    def test_stack_counts_and_links(self):
        stack = generate_stack("b11", seed=4)
        assert stack.die_count == 4
        stack.validate_links()
        bonded = [l for l in stack.links if not l.is_external]
        total_in = sum(len(d.inbound_tsvs()) for d in stack.dies)
        assert len(bonded) == total_in  # every inbound fed
        # per Table II, b11 has more outbound than inbound -> externals
        assert any(l.is_external for l in stack.links)

    def test_bad_link_rejected(self):
        stack = generate_stack("b11", seed=4)
        stack.links.append(TsvLink(
            name="bogus", source_die=0,
            source_port=stack.dies[0].inbound_tsvs()[0].name,  # wrong kind
            target_die=1,
            target_port=stack.dies[1].inbound_tsvs()[0].name,
        ))
        with pytest.raises(PartitionError):
            stack.validate_links()

    def test_die_index_bounds(self):
        stack = generate_stack("b11", seed=4)
        with pytest.raises(PartitionError):
            stack.die(9)
