"""Integration tests for the WCM job daemon.

Real daemons over real Unix sockets in ``tmp_path``, driven through
:class:`ServeClient` — plus one subprocess test for the SIGTERM drain
contract (`repro serve` exits 0 after finishing in-flight work).
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.runtime.config import configure
from repro.serve import jobs as jobs_mod
from repro.serve.client import ServeClient, ServeUnavailable
from repro.serve.protocol import DONE, SHED, encode, job_fingerprint
from repro.serve.queue import AdmissionPolicy
from repro.serve.server import WcmServer

_SRC = str(Path(repro.__file__).parents[1])


def _start(state_dir, **kwargs):
    kwargs.setdefault("workers", 1)
    server = WcmServer(state_dir, **kwargs).start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(server.socket_path)
    assert client.wait_until_up(timeout_s=15.0)
    return server, client


def _stop(server):
    server.stop()


def _wait_running(client, job_id, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        states = {j["job_id"]: j["state"] for j in client.jobs()["jobs"]}
        if states.get(job_id) == "running":
            return
        time.sleep(0.01)
    raise AssertionError(f"{job_id} never started running")


class TestBasics:
    def test_noop_roundtrip(self, tmp_path):
        server, client = _start(tmp_path)
        try:
            response = client.submit("noop", {"value": 42})
            assert response["state"] == DONE
            assert response["result"] == {"value": 42}
            assert response["attempts"] == 1
            assert response["cached"] is False
        finally:
            _stop(server)

    def test_ping_and_stats(self, tmp_path):
        server, client = _start(tmp_path)
        try:
            assert client.ping()["pong"] is True
            client.submit("noop", {"value": 1})
            stats = client.stats()
            assert stats["counters"]["done"] == 1
            assert stats["workers"] == 1
        finally:
            _stop(server)

    def test_deterministic_job_error_is_terminal_failed(self, tmp_path):
        server, client = _start(tmp_path)
        try:
            response = client.submit("noop", {"fail": "boom"})
            assert response["state"] == "failed"
            assert "boom" in response["error"]
            assert response["attempts"] == 1  # never retried
        finally:
            _stop(server)

    def test_no_wait_then_wait_op(self, tmp_path):
        server, client = _start(tmp_path)
        try:
            response = client.submit("noop", {"value": 3, "sleep_s": 0.2},
                                     wait=False)
            assert response["ok"]
            job_id = response["job_id"]
            final = client.wait_for(job_id, timeout_s=30.0)
            assert final["state"] == DONE
            assert final["result"] == {"value": 3}
        finally:
            _stop(server)


class TestSingleFlight:
    def test_concurrent_identical_submits_compute_once(self, tmp_path):
        server, client = _start(tmp_path)
        try:
            params = {"value": 7, "sleep_s": 0.5}
            first = client.submit("noop", params, wait=False)
            assert first["verdict"] == "queued"
            # wait until it is actually on the worker, then pile on
            _wait_running(client, first["job_id"])
            results = []

            def rider():
                results.append(ServeClient(server.socket_path).submit(
                    "noop", params))

            threads = [threading.Thread(target=rider) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert len(results) == 4
            assert all(r["state"] == DONE for r in results)
            assert all(r["result"] == {"value": 7} for r in results)
            assert all(r["job_id"] == first["job_id"] for r in results)
            counters = client.stats()["counters"]
            assert counters["done"] == 1        # computed exactly once
            assert counters["coalesced"] == 4
        finally:
            _stop(server)


class TestAdmissionOverWire:
    def test_overflow_sheds_with_retry_after(self, tmp_path):
        policy = AdmissionPolicy(queue_caps=(1, 1, 1))
        server, client = _start(tmp_path, policy=policy)
        try:
            hog = client.submit("noop", {"value": 1, "sleep_s": 1.0},
                                wait=False)
            _wait_running(client, hog["job_id"])
            client.submit("noop", {"value": 2, "sleep_s": 0.1},
                          wait=False)  # fills the one queued slot
            shed = client.submit("noop", {"value": 3}, wait=False)
            assert shed["state"] == SHED
            assert shed["retry_after_s"] > 0
        finally:
            _stop(server)

    def test_client_backoff_eventually_admits(self, tmp_path):
        policy = AdmissionPolicy(queue_caps=(1, 1, 1))
        server, client = _start(tmp_path, policy=policy)
        try:
            hog = client.submit("noop", {"value": 1, "sleep_s": 0.4},
                                wait=False)
            _wait_running(client, hog["job_id"])
            client.submit("noop", {"value": 2}, wait=False)
            response = client.submit_with_backoff(
                "noop", {"value": 3}, max_attempts=8,
                backoff_base_s=0.05, backoff_cap_s=0.2)
            assert response["state"] == DONE
            assert response["result"] == {"value": 3}
        finally:
            _stop(server)

    def test_running_deadline_sheds_and_pool_recovers(self, tmp_path):
        server, client = _start(tmp_path)
        try:
            shed = client.submit("noop", {"value": 1, "sleep_s": 30.0},
                                 deadline_s=0.4)
            assert shed["state"] == SHED
            assert "deadline" in shed["error"]
            # the killed worker was replaced: the pool still serves
            ok = client.submit("noop", {"value": 2})
            assert ok["state"] == DONE
        finally:
            _stop(server)


class TestProtocolRobustness:
    def test_garbage_line_answered_then_dropped(self, tmp_path):
        server, client = _start(tmp_path)
        try:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(10.0)
            sock.connect(str(server.socket_path))
            sock.sendall(b"this is not json\n")
            reply = json.loads(sock.recv(65536).split(b"\n")[0])
            assert reply["ok"] is False
            assert sock.recv(65536) == b""  # server dropped us
            sock.close()
            assert client.submit("noop", {"value": 1})["state"] == DONE
        finally:
            _stop(server)

    def test_unknown_op_is_an_error_not_a_crash(self, tmp_path):
        server, client = _start(tmp_path)
        try:
            response = client.request({"op": "frobnicate"})
            assert response["ok"] is False
            assert "unknown op" in response["error"]
            assert client.ping()["pong"]
        finally:
            _stop(server)

    def test_disconnecting_client_does_not_lose_the_job(self, tmp_path):
        server, client = _start(tmp_path)
        try:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(str(server.socket_path))
            sock.sendall(encode({"op": "submit", "kind": "noop",
                                 "params": {"value": 9, "sleep_s": 0.3},
                                 "wait": False}))
            job_id = json.loads(sock.recv(65536).split(b"\n")[0])["job_id"]
            sock.close()  # vanish without reading anything further
            final = client.wait_for(job_id, timeout_s=30.0)
            assert final["state"] == DONE
            assert final["result"] == {"value": 9}
        finally:
            _stop(server)


class TestCacheAndByteIdentity:
    PARAMS = {"circuit": "b11", "die": 1, "scale": "smoke"}

    def test_flow_served_warm_matches_cold_and_survives_restart(
            self, tmp_path):
        server, client = _start(tmp_path)
        try:
            first = client.submit("flow", dict(self.PARAMS),
                                  timeout_s=120.0)
            assert first["state"] == DONE
            assert first["cached"] is False
        finally:
            _stop(server)

        # a fresh daemon over the same state dir serves from cache
        server, client = _start(tmp_path)
        try:
            second = client.submit("flow", dict(self.PARAMS),
                                   timeout_s=120.0)
            assert second["state"] == DONE
            assert second["cached"] is True
            assert second["result"] == first["result"]
        finally:
            _stop(server)

        # byte-identity: warm served result == cold in-process compute
        configure(no_cache=True)
        cold = jobs_mod.run_flow(dict(self.PARAMS))
        assert cold == first["result"]
        assert cold["result_fingerprint"] == \
            second["result"]["result_fingerprint"]
        assert cold["manifest_fingerprint"] == \
            second["result"]["manifest_fingerprint"]

    def test_torn_cache_entry_quarantines_and_recomputes(self, tmp_path):
        server, client = _start(tmp_path)
        try:
            first = client.submit("flow", dict(self.PARAMS),
                                  timeout_s=120.0)
            assert first["state"] == DONE
            entry = server.cache.path_for(
                job_fingerprint("flow", dict(self.PARAMS)))
            data = entry.read_bytes()
            entry.write_bytes(data[:len(data) // 2])  # torn write
            again = client.submit("flow", dict(self.PARAMS),
                                  timeout_s=120.0)
            assert again["state"] == DONE
            assert again["result"] == first["result"]
            assert server.cache.stats.quarantined >= 1
        finally:
            _stop(server)

    def test_misshapen_cache_entry_quarantines(self, tmp_path):
        server, client = _start(tmp_path)
        try:
            fp = job_fingerprint("flow", dict(self.PARAMS))
            path = server.cache.path_for(fp)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text('{"schema": 999, "not": "a served job"}',
                            encoding="utf-8")
            response = client.submit("flow", dict(self.PARAMS),
                                     timeout_s=120.0)
            assert response["state"] == DONE
            assert response["cached"] is False
            assert server.cache.stats.quarantined >= 1
        finally:
            _stop(server)


class TestEcoResidency:
    def test_warm_prefix_replay_matches_cold(self, tmp_path):
        server, client = _start(tmp_path)
        try:
            base = {"circuit": "b11", "die": 1,
                    "edits": [{"op": "set", "d_th_um": 40.0}]}
            extended = {"circuit": "b11", "die": 1,
                        "edits": base["edits"]
                        + [{"op": "set", "cov_th": 0.5}]}
            first = client.submit("eco", base, timeout_s=120.0)
            assert first["state"] == DONE
            assert first["result"]["warm"] is False
            second = client.submit("eco", extended, timeout_s=120.0)
            assert second["state"] == DONE
            assert second["result"]["warm"] is True
        finally:
            _stop(server)
        configure(no_cache=True)
        cold = jobs_mod.run_eco(extended)
        assert cold["result_fingerprint"] == \
            second["result"]["result_fingerprint"]
        assert cold["manifest_fingerprint"] == \
            second["result"]["manifest_fingerprint"]


class TestDrainAndRecovery:
    def test_drain_finishes_inflight_and_journals_queued(self, tmp_path):
        server, client = _start(tmp_path)
        try:
            running = client.submit("noop", {"value": 1, "sleep_s": 0.6},
                                    wait=False)
            queued = [client.submit("noop", {"value": 10 + i},
                                    wait=False) for i in range(2)]
            client.drain()
            server.serve_forever()  # returns once drained
            final = server.queue.get(running["job_id"])
            assert final.state == DONE  # in-flight work finished
        finally:
            _stop(server)

        # queued-but-unstarted jobs were journaled and are re-admitted
        server, client = _start(tmp_path)
        try:
            assert server.recovered_jobs == len(queued)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                counters = client.stats()["counters"]
                if counters["done"] >= len(queued):
                    break
                time.sleep(0.05)
            assert counters["done"] >= len(queued)
            assert counters["recovered"] == len(queued)
        finally:
            _stop(server)

    def test_socket_is_removed_after_drain(self, tmp_path):
        server, client = _start(tmp_path)
        client.drain()
        server.serve_forever()
        assert not server.socket_path.exists()
        with pytest.raises(ServeUnavailable):
            client.ping()


class TestSigtermSubprocess:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        state = tmp_path / "state"
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--state-dir", str(state), "--serve-workers", "1"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        try:
            client = ServeClient(state / "serve.sock")
            assert client.wait_until_up(timeout_s=60.0)
            assert client.submit("noop", {"value": 5},
                                 timeout_s=60.0)["state"] == DONE
            daemon.send_signal(signal.SIGTERM)
            out, _ = daemon.communicate(timeout=60)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate()
        assert daemon.returncode == 0
        assert "drained" in out
