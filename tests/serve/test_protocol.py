"""Tests for the JSON-line wire protocol (framing + job identity)."""

import socket
import threading

import pytest

from repro.serve.protocol import (
    MAX_LINE,
    PRIORITIES,
    LineChannel,
    ProtocolError,
    decode,
    encode,
    job_fingerprint,
    validate_priority,
)


class TestFraming:
    def test_encode_is_one_sorted_line(self):
        raw = encode({"b": 1, "a": 2})
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1
        assert raw.index(b'"a"') < raw.index(b'"b"')

    def test_decode_roundtrip(self):
        message = {"op": "submit", "params": {"die": 1}}
        assert decode(encode(message).rstrip(b"\n")) == message

    def test_decode_rejects_non_json(self):
        with pytest.raises(ProtocolError):
            decode(b"not json {")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode(b"[1, 2, 3]")


class TestJobFingerprint:
    def test_stable(self):
        fp = job_fingerprint("flow", {"circuit": "b11", "die": 1})
        assert fp == job_fingerprint("flow", {"die": 1, "circuit": "b11"})

    def test_kind_and_params_matter(self):
        base = job_fingerprint("flow", {"circuit": "b11", "die": 1})
        assert base != job_fingerprint("atpg", {"circuit": "b11", "die": 1})
        assert base != job_fingerprint("flow", {"circuit": "b11", "die": 2})


class TestLineChannel:
    def _pair(self):
        left, right = socket.socketpair()
        return LineChannel(left), LineChannel(right)

    def test_send_recv_many(self):
        a, b = self._pair()
        try:
            for index in range(3):
                a.send({"n": index})
            assert [b.recv()["n"] for _ in range(3)] == [0, 1, 2]
        finally:
            a.close()
            b.close()

    def test_blank_lines_tolerated(self):
        a, b = self._pair()
        try:
            a.sock.sendall(b"\n  \n" + encode({"ok": True}))
            assert b.recv() == {"ok": True}
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = self._pair()
        try:
            a.send({"last": 1})
            a.close()
            assert b.recv() == {"last": 1}
            assert b.recv() is None
        finally:
            b.close()

    def test_mid_message_close_raises(self):
        a, b = self._pair()
        try:
            a.sock.sendall(b'{"torn": ')
            a.close()
            with pytest.raises(ProtocolError):
                b.recv()
        finally:
            b.close()

    def test_oversized_line_raises(self):
        a, b = self._pair()
        filler = b"x" * 65536
        received = []

        def pump():
            try:
                received.append(b.recv())
            except ProtocolError as exc:
                received.append(exc)

        thread = threading.Thread(target=pump, daemon=True)
        thread.start()
        sent = 0
        try:
            while sent <= MAX_LINE + 65536:
                a.sock.sendall(filler)
                sent += len(filler)
        except OSError:
            pass  # reader may already have given up
        thread.join(timeout=30)
        a.close()
        b.close()
        assert not thread.is_alive()
        assert isinstance(received[0], ProtocolError)


class TestPriorities:
    def test_known_priorities_pass(self):
        for name in PRIORITIES:
            assert validate_priority(name) == name

    def test_unknown_priority_rejected(self):
        with pytest.raises(ProtocolError):
            validate_priority("urgent")
