"""Chaos-hardening tests for the job daemon.

Worker-side faults are injected with :class:`ChaosPlan` keyed by the
job's admission sequence number (``seq`` starts at 1 and advances on
every submission, refusals included), installed via
``configure(chaos=...)`` *before* the server spawns its pool so the
plan travels to the workers. The acceptance bar from the issue: every
submitted job ends in **exactly one** terminal state, with no lost or
duplicated results, and anything that does come back ``done`` is
byte-identical to a clean computation.
"""

import time
from pathlib import Path

from repro.runtime.chaos import ChaosPlan, ChaosSpec
from repro.runtime.config import configure, current_config
from repro.serve import jobs as jobs_mod
from repro.serve.client import ServeClient
from repro.serve.protocol import (
    DONE,
    FAILED,
    QUARANTINED,
    SHED,
    TERMINAL_STATES,
)
from repro.serve.queue import AdmissionPolicy
from repro.serve.server import WcmServer

import threading


def _start(state_dir, **kwargs):
    kwargs.setdefault("workers", 1)
    server = WcmServer(state_dir, **kwargs).start()
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServeClient(server.socket_path)
    assert client.wait_until_up(timeout_s=15.0)
    return server, client


class TestWorkerCrash:
    def test_crash_mid_job_retries_to_done(self, tmp_path):
        configure(chaos=ChaosPlan(
            cells={1: ChaosSpec("crash", attempts=1)}))
        server, client = _start(tmp_path)
        try:
            response = client.submit("noop", {"value": 7},
                                     timeout_s=60.0)
            assert response["state"] == DONE
            assert response["result"] == {"value": 7}
            assert response["attempts"] == 2  # crashed once, retried
            counters = client.stats()["counters"]
            assert counters["done"] == 1      # exactly one result
            assert counters["retries"] == 1
            assert counters["failed"] == 0
        finally:
            server.stop()

    def test_crashes_exhaust_to_failed_then_breaker_quarantines(
            self, tmp_path):
        configure(chaos=ChaosPlan(
            cells={1: ChaosSpec("crash", attempts=10)}))
        policy = AdmissionPolicy(max_attempts=2, breaker_threshold=2,
                                 breaker_probe_interval=4,
                                 backoff_base_s=0.05, backoff_cap_s=0.2)
        server, client = _start(tmp_path, policy=policy)
        try:
            doomed = client.submit("noop", {"value": 1}, timeout_s=60.0)
            assert doomed["state"] == FAILED
            assert doomed["attempts"] == 2
            assert "crash" in doomed["error"]

            # two crash strikes opened the noop breaker
            verdicts = [client.submit("noop", {"value": 10 + i},
                                      timeout_s=60.0)["state"]
                        for i in range(4)]
            # refusals 1..3 quarantine; the 4th is the half-open probe,
            # runs clean (its seq is past the chaos plan) and closes
            assert verdicts == [QUARANTINED] * 3 + [DONE]
            assert client.submit("noop", {"value": 99},
                                 timeout_s=60.0)["state"] == DONE
            counters = client.stats()["counters"]
            assert counters["breaker_opened"] == 1
            assert counters["breaker_closed"] == 1
        finally:
            server.stop()


class TestHangAndDelay:
    def test_hang_is_killed_by_budget_and_retried_clean(self, tmp_path):
        configure(chaos=ChaosPlan(
            cells={1: ChaosSpec("hang", attempts=1)}))
        server, client = _start(tmp_path, job_timeout_s=0.6)
        try:
            response = client.submit("noop", {"value": 3},
                                     timeout_s=60.0)
            assert response["state"] == DONE
            assert response["result"] == {"value": 3}
            assert response["attempts"] == 2
        finally:
            server.stop()

    def test_delay_past_deadline_sheds_exactly_once(self, tmp_path):
        configure(chaos=ChaosPlan(
            cells={1: ChaosSpec("delay", seconds=30.0)}))
        server, client = _start(tmp_path)
        try:
            shed = client.submit("noop", {"value": 1}, deadline_s=0.4,
                                 timeout_s=60.0)
            assert shed["state"] == SHED
            clean = client.submit("noop", {"value": 2}, timeout_s=60.0)
            assert clean["state"] == DONE
            counters = client.stats()["counters"]
            assert counters["shed"] == 1
            assert counters["done"] == 1
        finally:
            server.stop()


class TestRaisedChaos:
    def test_raise_is_deterministic_terminal_no_retry(self, tmp_path):
        configure(chaos=ChaosPlan(cells={1: ChaosSpec("raise")}))
        server, client = _start(tmp_path)
        try:
            response = client.submit("noop", {"value": 1},
                                     timeout_s=60.0)
            assert response["state"] == FAILED
            assert response["attempts"] == 1  # exceptions do not retry
            assert "chaos" in response["error"]
            assert client.stats()["counters"]["retries"] == 0
        finally:
            server.stop()


class TestTornCache:
    PARAMS = {"circuit": "b11", "die": 1, "scale": "smoke"}

    def test_garbage_cache_entries_recompute_identically(self, tmp_path):
        server, client = _start(tmp_path)
        try:
            first = client.submit("flow", dict(self.PARAMS),
                                  timeout_s=120.0)
            assert first["state"] == DONE
            cache_root = Path(server.cache.root)
            entries = sorted(cache_root.glob("[0-9a-f][0-9a-f]/*.json"))
            assert entries  # serve entry + the flow's own wcm entry
            for entry in entries:
                entry.write_bytes(b"\x00\xffnot json\xfe")
            again = client.submit("flow", dict(self.PARAMS),
                                  timeout_s=120.0)
            assert again["state"] == DONE
            assert again["cached"] is False
            assert again["result"] == first["result"]
            assert again["result"]["result_fingerprint"] == \
                first["result"]["result_fingerprint"]
            assert again["result"]["manifest_fingerprint"] == \
                first["result"]["manifest_fingerprint"]
        finally:
            server.stop()


class TestChaosStorm:
    def test_every_job_ends_in_exactly_one_terminal_state(self, tmp_path):
        configure(chaos=ChaosPlan(cells={
            1: ChaosSpec("crash", attempts=1),
            2: ChaosSpec("hang", attempts=1),
            3: ChaosSpec("raise"),
            4: ChaosSpec("delay", seconds=0.2),
            5: ChaosSpec("crash", attempts=10),
            6: ChaosSpec("delay", seconds=0.1),
        }))
        policy = AdmissionPolicy(queue_caps=(2, 2, 2), max_attempts=2,
                                 breaker_threshold=3,
                                 backoff_base_s=0.05, backoff_cap_s=0.2)
        server, client = _start(tmp_path, workers=2, policy=policy,
                                job_timeout_s=0.8)
        try:
            submitted = {}
            for value in range(8):
                response = client.submit("noop", {"value": value},
                                         wait=False)
                assert response["ok"]
                submitted[response["job_id"]] = value

            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                snapshot = client.jobs()["jobs"]
                states = {j["job_id"]: j["state"] for j in snapshot}
                if all(states.get(job_id) in TERMINAL_STATES
                       for job_id in submitted):
                    break
                time.sleep(0.05)

            # exactly one record per submission, all terminal
            ids = [j["job_id"] for j in snapshot]
            assert len(ids) == len(set(ids))
            for job_id in submitted:
                assert states[job_id] in TERMINAL_STATES, \
                    f"{job_id} never reached a terminal state"

            # no lost or corrupted results: every done job answers its
            # own submission's value
            for job_id, value in submitted.items():
                final = client.wait_for(job_id, timeout_s=10.0)
                if final["state"] == DONE:
                    assert final["result"] == {"value": value}

            # the ledger balances: every admission is accounted for
            counters = client.stats()["counters"]
            terminal_total = (counters["done"] + counters["failed"]
                              + counters["shed"]
                              + counters["quarantined"])
            assert terminal_total == len(submitted)
        finally:
            server.stop()


class TestChaosByteIdentity:
    PARAMS = {"circuit": "b11", "die": 1, "scale": "smoke"}

    def test_flow_result_after_crash_matches_clean_compute(self, tmp_path):
        configure(chaos=ChaosPlan(
            cells={1: ChaosSpec("crash", attempts=1)}))
        server, client = _start(tmp_path)
        try:
            served = client.submit("flow", dict(self.PARAMS),
                                   timeout_s=120.0)
            assert served["state"] == DONE
            assert served["attempts"] == 2
        finally:
            server.stop()
        configure(no_cache=True)
        current_config().chaos = None  # conftest restores it
        cold = jobs_mod.run_flow(dict(self.PARAMS))
        assert served["result"] == cold
        assert served["result"]["result_fingerprint"] == \
            cold["result_fingerprint"]
        assert served["result"]["manifest_fingerprint"] == \
            cold["manifest_fingerprint"]
