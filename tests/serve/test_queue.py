"""Tests for admission control, backoff, breakers and the journal.

Everything here is clock-free: the queue takes monotonic instants as
arguments, so each timing path is driven synthetically.
"""

import json

import pytest

from repro.serve.protocol import (
    DONE,
    FAILED,
    QUARANTINED,
    QUEUED,
    SHED,
    TERMINAL_STATES,
)
from repro.serve.queue import (
    AdmissionPolicy,
    JobJournal,
    JobQueue,
    backoff_s,
)


def _policy(**overrides):
    defaults = dict(queue_caps=(2, 2, 2), max_attempts=3,
                    backoff_base_s=0.05, backoff_cap_s=1.0,
                    breaker_threshold=2, breaker_probe_interval=4)
    defaults.update(overrides)
    return AdmissionPolicy(**defaults)


class TestBackoff:
    def test_first_attempt_has_no_delay(self):
        assert backoff_s(1, 0.05, 5.0) == 0.0

    def test_doubles_then_caps(self):
        got = [backoff_s(a, 0.05, 0.15) for a in (2, 3, 4, 5)]
        assert got == [0.05, 0.10, 0.15, 0.15]

    def test_deterministic(self):
        assert backoff_s(4, 0.05, 5.0) == backoff_s(4, 0.05, 5.0)


class TestAdmission:
    def test_submit_queues(self):
        queue = JobQueue(_policy())
        job, verdict = queue.submit("noop", {"value": 1})
        assert verdict == "queued"
        assert job.state == QUEUED
        assert queue.counters["submitted"] == 1

    def test_identical_submission_coalesces(self):
        queue = JobQueue(_policy())
        first, _ = queue.submit("noop", {"value": 1})
        second, verdict = queue.submit("noop", {"value": 1})
        assert verdict == "coalesced"
        assert second is first
        assert first.coalesced == 1
        assert queue.counters["coalesced"] == 1

    def test_overflow_sheds_with_scaled_retry_after(self):
        queue = JobQueue(_policy(queue_caps=(1, 1, 1),
                                 shed_retry_after_s=0.5))
        queue.submit("noop", {"value": 1})
        job, verdict = queue.submit("noop", {"value": 2})
        assert verdict == SHED
        assert job.state == SHED
        assert job.result["retry_after_s"] >= 0.5
        assert job.terminal_event.is_set()
        assert queue.counters["shed"] == 1

    def test_caps_are_per_priority_class(self):
        queue = JobQueue(_policy(queue_caps=(1, 1, 1)))
        queue.submit("noop", {"value": 1}, priority="normal")
        _, verdict = queue.submit("noop", {"value": 2},
                                  priority="interactive")
        assert verdict == "queued"

    def test_draining_sheds_new_work(self):
        queue = JobQueue(_policy())
        queue.start_drain()
        job, verdict = queue.submit("noop", {"value": 1})
        assert verdict == SHED
        assert "draining" in job.error
        assert queue.counters["shed"] == 1

    def test_unknown_kind_rejected(self):
        from repro.serve.jobs import JobError

        queue = JobQueue(_policy())
        with pytest.raises(JobError):
            queue.submit("mine-bitcoin", {})


class TestScheduling:
    def test_priority_beats_fifo(self):
        queue = JobQueue(_policy())
        queue.submit("noop", {"value": 1}, priority="batch")
        queue.submit("noop", {"value": 2}, priority="interactive")
        job, _ = queue.next_ready(now=0.0)
        assert job.params["value"] == 2
        assert job.state == "running"
        assert job.attempts == 1

    def test_fifo_within_class(self):
        queue = JobQueue(_policy())
        queue.submit("noop", {"value": 1})
        queue.submit("noop", {"value": 2})
        first, _ = queue.next_ready(now=0.0)
        second, _ = queue.next_ready(now=0.0)
        assert (first.params["value"], second.params["value"]) == (1, 2)

    def test_backoff_defers_and_reports_wake_time(self):
        queue = JobQueue(_policy())
        job, _ = queue.submit("noop", {"value": 1})
        queue.next_ready(now=0.0)
        queue.fail(job, "crash", retryable=True, now=10.0, crash=True)
        ready, wake_at = queue.next_ready(now=10.0)
        assert ready is None
        assert wake_at == pytest.approx(10.05)
        ready, _ = queue.next_ready(now=10.06)
        assert ready is job

    def test_requeue_is_uncharged(self):
        queue = JobQueue(_policy())
        job, _ = queue.submit("noop", {"value": 1})
        queue.next_ready(now=0.0)
        assert job.attempts == 1
        queue.requeue(job)
        assert job.state == QUEUED
        assert job.attempts == 0


class TestRetryAndFailure:
    def test_retryable_failure_requeues_with_backoff(self):
        queue = JobQueue(_policy())
        job, _ = queue.submit("noop", {"value": 1})
        queue.next_ready(now=0.0)
        state = queue.fail(job, "worker crashed", retryable=True,
                           now=1.0, crash=True)
        assert state == QUEUED
        assert job.not_before == pytest.approx(1.05)
        assert queue.counters["retries"] == 1

    def test_attempts_exhausted_is_terminal_failed(self):
        queue = JobQueue(_policy(max_attempts=2, breaker_threshold=99))
        job, _ = queue.submit("noop", {"value": 1})
        for tick in (0.0, 10.0):  # past the retry's backoff window
            ready, _ = queue.next_ready(now=tick)
            assert ready is job
            queue.fail(job, "crash", retryable=True, now=tick, crash=True)
        assert job.state == FAILED
        assert job.attempts == 2
        assert queue.counters["failed"] == 1

    def test_non_retryable_failure_is_immediately_terminal(self):
        queue = JobQueue(_policy())
        job, _ = queue.submit("noop", {"value": 1})
        queue.next_ready(now=0.0)
        queue.fail(job, "ValueError: bad params", retryable=False)
        assert job.state == FAILED
        assert job.attempts == 1

    def test_exactly_one_terminal_state(self):
        queue = JobQueue(_policy())
        job, _ = queue.submit("noop", {"value": 1})
        queue.next_ready(now=0.0)
        queue.complete(job, {"value": 1})
        queue.fail(job, "late crash report", retryable=True, crash=True)
        queue.complete(job, {"value": 999})
        assert job.state == DONE
        assert job.result == {"value": 1}
        assert queue.counters["done"] == 1
        assert queue.counters["failed"] == 0

    def test_deadline_expiry_while_queued_sheds(self):
        queue = JobQueue(_policy())
        job, _ = queue.submit("noop", {"value": 1}, deadline_s=5.0,
                              now=0.0)
        ready, _ = queue.next_ready(now=6.0)
        assert ready is None
        assert job.state == SHED
        assert "deadline" in job.error


class TestCircuitBreaker:
    def _crash_once(self, queue, value):
        job, verdict = queue.submit("noop", {"value": value})
        if verdict != "queued":
            return job, verdict
        queue.next_ready(now=0.0)
        queue.fail(job, "worker crashed", retryable=True, now=0.0,
                   crash=True)
        tick = 100.0
        while not job.terminal:  # retries left: crash them too
            ready, _ = queue.next_ready(now=tick)
            assert ready is job
            queue.fail(job, "worker crashed", retryable=True,
                       now=tick, crash=True)
            tick += 100.0
        return job, verdict

    def test_threshold_crashes_open_the_breaker(self):
        queue = JobQueue(_policy(max_attempts=1, breaker_threshold=2))
        self._crash_once(queue, 1)
        self._crash_once(queue, 2)
        assert queue.counters["breaker_opened"] == 1
        job, verdict = queue.submit("noop", {"value": 3})
        assert verdict == QUARANTINED
        assert job.state == QUARANTINED
        assert job.terminal_event.is_set()

    def test_every_nth_refusal_probes(self):
        queue = JobQueue(_policy(max_attempts=1, breaker_threshold=2,
                                 breaker_probe_interval=4))
        self._crash_once(queue, 1)
        self._crash_once(queue, 2)
        verdicts = [queue.submit("noop", {"value": 10 + i})[1]
                    for i in range(4)]
        assert verdicts == [QUARANTINED, QUARANTINED, QUARANTINED,
                            "queued"]

    def test_probe_success_closes_the_breaker(self):
        queue = JobQueue(_policy(max_attempts=1, breaker_threshold=2,
                                 breaker_probe_interval=2))
        self._crash_once(queue, 1)
        self._crash_once(queue, 2)
        queue.submit("noop", {"value": 3})          # refused
        probe, verdict = queue.submit("noop", {"value": 4})
        assert verdict == "queued" and probe.probe
        queue.next_ready(now=0.0)
        queue.complete(probe, {"value": 4})
        assert queue.counters["breaker_closed"] == 1
        _, verdict = queue.submit("noop", {"value": 5})
        assert verdict == "queued"

    def test_probe_failure_rearms_without_retry(self):
        queue = JobQueue(_policy(max_attempts=3, breaker_threshold=2,
                                 breaker_probe_interval=2))
        # one job crashing through all its retries opens the breaker
        job, _ = queue.submit("noop", {"value": 1})
        tick = 0.0
        while not job.terminal:
            ready, _ = queue.next_ready(now=tick)
            assert ready is job
            queue.fail(job, "crash", retryable=True, now=tick, crash=True)
            tick += 100.0
        assert queue.counters["breaker_opened"] == 1
        queue.submit("noop", {"value": 2})          # refused
        probe, verdict = queue.submit("noop", {"value": 3})
        assert verdict == "queued" and probe.probe
        ready, _ = queue.next_ready(now=tick)
        assert ready is probe
        # a probe failure is terminal even though retries remain
        queue.fail(probe, "crash", retryable=True, now=tick, crash=True)
        assert probe.state == FAILED
        _, verdict = queue.submit("noop", {"value": 4})
        assert verdict == QUARANTINED


class TestJournal:
    def test_submit_then_terminal_leaves_nothing_pending(self, tmp_path):
        path = tmp_path / "queue.journal"
        queue = JobQueue(_policy(), journal=JobJournal(path))
        job, _ = queue.submit("noop", {"value": 1})
        queue.next_ready(now=0.0)
        queue.complete(job, {"value": 1})
        queue.journal.close()
        assert JobJournal.replay(path) == []

    def test_unfinished_submissions_replay(self, tmp_path):
        path = tmp_path / "queue.journal"
        queue = JobQueue(_policy(), journal=JobJournal(path))
        queue.submit("noop", {"value": 1})
        queue.submit("noop", {"value": 2}, priority="interactive")
        queue.journal.close()
        pending = JobJournal.replay(path)
        assert [p["params"]["value"] for p in pending] == [1, 2]
        assert pending[1]["priority"] == 0

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "queue.journal"
        queue = JobQueue(_policy(), journal=JobJournal(path))
        queue.submit("noop", {"value": 1})
        queue.journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"t": "subm')  # daemon died mid-write
        pending = JobJournal.replay(path)
        assert [p["params"]["value"] for p in pending] == [1]

    def test_refusals_are_not_journaled_as_pending(self, tmp_path):
        path = tmp_path / "queue.journal"
        queue = JobQueue(_policy(queue_caps=(1, 1, 1)),
                         journal=JobJournal(path))
        queue.submit("noop", {"value": 1})
        _, verdict = queue.submit("noop", {"value": 2})
        assert verdict == SHED
        queue.journal.close()
        pending = JobJournal.replay(path)
        assert [p["params"]["value"] for p in pending] == [1]

    def test_recover_records_readmits(self, tmp_path):
        path = tmp_path / "queue.journal"
        queue = JobQueue(_policy(), journal=JobJournal(path))
        queue.submit("noop", {"value": 1})
        queue.journal.close()
        pending = JobJournal.replay(path)

        fresh = JobQueue(_policy())
        assert fresh.recover_records(pending) == 1
        assert fresh.counters["recovered"] == 1
        job, _ = fresh.next_ready(now=0.0)
        assert job.params == {"value": 1}
        assert job.deadline is None

    def test_journal_lines_are_valid_json(self, tmp_path):
        path = tmp_path / "queue.journal"
        queue = JobQueue(_policy(), journal=JobJournal(path))
        job, _ = queue.submit("noop", {"value": 1})
        queue.next_ready(now=0.0)
        queue.complete(job, {"value": 1})
        queue.journal.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["t"] for r in records] == ["submit", "terminal"]
        assert records[1]["state"] == DONE


class TestStats:
    def test_states_and_counters_are_consistent(self):
        queue = JobQueue(_policy(queue_caps=(1, 1, 1)))
        done, _ = queue.submit("noop", {"value": 1})
        queue.next_ready(now=0.0)
        queue.complete(done, {"value": 1})
        queue.submit("noop", {"value": 2})
        queue.submit("noop", {"value": 3})  # shed: class full
        stats = queue.stats()
        assert stats["states"][DONE] == 1
        assert stats["states"][QUEUED] == 1
        assert stats["states"][SHED] == 1
        assert stats["counters"]["submitted"] == 2
        for job in queue.jobs.values():
            assert job.state in TERMINAL_STATES + (QUEUED,)
