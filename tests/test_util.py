"""Tests for repro.util: RNG determinism, tables, errors."""

import pytest
from hypothesis import given, strategies as st

from repro.util import AsciiTable, DeterministicRng, derive_seed
from repro.util.errors import (
    AtpgError,
    ConfigError,
    LibraryError,
    NetlistError,
    PartitionError,
    ReproError,
    TimingError,
)
from repro.util.tables import format_pair, format_percent


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.random() for _ in range(20)] == \
            [b.random() for _ in range(20)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.random() for _ in range(8)] != \
            [b.random() for _ in range(8)]

    def test_child_streams_are_independent(self):
        root = DeterministicRng(7)
        child_a = root.child("a")
        child_b = root.child("b")
        assert child_a.seed != child_b.seed
        assert child_a.random() != child_b.random()

    def test_child_does_not_depend_on_parent_consumption(self):
        root1 = DeterministicRng(7)
        root1.random()  # consume some entropy
        root2 = DeterministicRng(7)
        assert root1.child("x").seed == root2.child("x").seed

    def test_child_path_order_matters(self):
        root = DeterministicRng(7)
        assert root.child("a", "b").seed != root.child("b", "a").seed

    def test_shuffled_leaves_input_untouched(self):
        rng = DeterministicRng(3)
        items = [1, 2, 3, 4, 5]
        copy = rng.shuffled(items)
        assert items == [1, 2, 3, 4, 5]
        assert sorted(copy) == items

    def test_derive_seed_stable(self):
        assert derive_seed(10, "x", 3) == derive_seed(10, "x", 3)
        assert derive_seed(10, "x", 3) != derive_seed(10, "x", 4)

    @given(st.integers(min_value=0, max_value=2**32),
           st.integers(min_value=1, max_value=60))
    def test_getrandbits_in_range(self, seed, bits):
        value = DeterministicRng(seed).getrandbits(bits)
        assert 0 <= value < (1 << bits)

    @given(st.integers(min_value=0, max_value=2**16),
           st.lists(st.integers(), min_size=1, max_size=30))
    def test_choice_returns_member(self, seed, items):
        assert DeterministicRng(seed).choice(items) in items


class TestAsciiTable:
    def test_render_alignment(self):
        table = AsciiTable(["a", "long_header"], title="T")
        table.add_row(["xx", 1])
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long_header" in lines[1]
        assert len({len(l) for l in lines[1:]}) <= 2  # header/divider/rows

    def test_row_width_mismatch_raises(self):
        table = AsciiTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_separator_renders_as_divider(self):
        table = AsciiTable(["a"])
        table.add_row(["x"])
        table.add_separator()
        table.add_row(["y"])
        lines = table.render().splitlines()
        assert lines[3] == lines[1]  # same divider

    def test_markdown_render(self):
        table = AsciiTable(["a", "b"])
        table.add_row([1, 2])
        md = table.render_markdown()
        assert "| a | b |" in md
        assert "| 1 | 2 |" in md

    def test_format_percent(self):
        assert format_percent(0.9934) == "99.34%"
        assert format_percent(1.0) == "100.00%"

    def test_format_pair(self):
        assert format_pair(0.995, 82) == "(99.50%, 82)"


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        NetlistError, LibraryError, TimingError, AtpgError,
        PartitionError, ConfigError,
    ])
    def test_all_domain_errors_are_repro_errors(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")
