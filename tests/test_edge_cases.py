"""Edge-case and failure-injection tests across subsystems."""

import pytest

from repro.bench.generator import DieGeneratorConfig, generate_die
from repro.bench.itc99 import DieProfile
from repro.core.clique import partition_cliques
from repro.core.config import Scenario, WcmConfig
from repro.core.flow import run_wcm_flow
from repro.core.graph import build_wcm_graph
from repro.core.problem import build_problem
from repro.core.timing_model import ReuseTimingModel
from repro.dft.scan import stitch_scan_chains
from repro.dft.wrapper import WrapperPlan, insert_wrappers
from repro.netlist.builder import NetlistBuilder
from repro.netlist.core import PortKind
from repro.place.placer import place_die
from repro.util.errors import NetlistError


def custom_profile(**overrides) -> DieProfile:
    values = dict(circuit="b11", die_index=0, scan_flip_flops=6,
                  gates=60, inbound_tsvs=5, outbound_tsvs=5)
    values.update(overrides)
    return DieProfile(**values)


class TestGeneratorEdgeCases:
    def test_minimal_die(self):
        profile = custom_profile(scan_flip_flops=1, gates=8,
                                 inbound_tsvs=1, outbound_tsvs=1)
        netlist = generate_die(profile, seed=1)
        assert netlist.gate_count == 8
        assert len(netlist.scan_flip_flops()) == 1

    def test_no_inbound_tsvs(self):
        profile = custom_profile(inbound_tsvs=0)
        netlist = generate_die(profile, seed=1)
        assert not netlist.inbound_tsvs()
        assert len(netlist.outbound_tsvs()) == 5

    def test_no_outbound_tsvs(self):
        profile = custom_profile(outbound_tsvs=0)
        netlist = generate_die(profile, seed=1)
        assert not netlist.outbound_tsvs()

    def test_single_cluster_config(self):
        config = DieGeneratorConfig(cluster_gates=10**6)
        netlist = generate_die(custom_profile(), seed=1, config=config)
        assert netlist.gate_count == 60

    def test_shallow_depth(self):
        config = DieGeneratorConfig(max_depth=3)
        netlist = generate_die(custom_profile(gates=40), seed=1,
                               config=config)
        from repro.netlist.topology import combinational_levels
        assert max(combinational_levels(netlist).values()) <= 3


class TestFlowEdgeCases:
    @pytest.fixture(scope="class")
    def tiny_problem(self):
        netlist = generate_die(custom_profile(), seed=5)
        return build_problem(netlist)

    def test_flow_on_tiny_die(self, tiny_problem):
        run = run_wcm_flow(tiny_problem,
                           WcmConfig.ours(Scenario.area_optimized()))
        run.plan.validate(tiny_problem.netlist)

    def test_flow_with_few_ffs(self):
        """b22_die3-style: far fewer FFs than TSV groups."""
        profile = custom_profile(scan_flip_flops=2, gates=80,
                                 inbound_tsvs=8, outbound_tsvs=8)
        problem = build_problem(generate_die(profile, seed=5))
        run = run_wcm_flow(problem,
                           WcmConfig.ours(Scenario.area_optimized()))
        run.plan.validate(problem.netlist)
        # at most 2 outbound groups can hold an FF (one chain per FF);
        # inbound groups may adopt FFs repeatedly
        outbound_ffs = [g.reused_ff for g in run.plan.groups
                        if g.kind is PortKind.TSV_OUTBOUND and g.reused_ff]
        assert len(outbound_ffs) <= 2

    def test_graph_with_no_available_ffs(self, tiny_problem):
        config = WcmConfig.agrawal(Scenario.area_optimized())
        model = ReuseTimingModel(tiny_problem, config)
        graph = build_wcm_graph(tiny_problem, PortKind.TSV_INBOUND,
                                [], config, model)
        assert graph.stats.ff_nodes == 0
        partition = partition_cliques(graph, model)
        # every group exists, none can have an FF
        assert all(c.ff is None for c in partition.cliques)

    def test_empty_graph_partitions(self, tiny_problem):
        """A die direction with zero TSVs yields zero groups."""
        profile = custom_profile(inbound_tsvs=0)
        problem = build_problem(generate_die(profile, seed=5))
        config = WcmConfig.agrawal(Scenario.area_optimized())
        model = ReuseTimingModel(problem, config)
        graph = build_wcm_graph(problem, PortKind.TSV_INBOUND,
                                problem.scan_ffs, config, model)
        partition = partition_cliques(graph, model)
        assert all(not c.tsvs for c in partition.cliques)


class TestInsertionEdgeCases:
    def test_insert_on_die_without_clock_fails(self):
        builder = NetlistBuilder("noclk")
        a = builder.add_input("a")
        tin = builder.add_input("tin", kind=PortKind.TSV_INBOUND)
        out = builder.add_gate("AND2_X1", [a, tin])
        builder.add_output("po", out)
        netlist = builder.finish()
        from repro.dft.wrapper import dedicated_plan
        with pytest.raises(NetlistError, match="clock"):
            insert_wrappers(netlist, dedicated_plan(netlist))

    def test_empty_plan_on_die_without_tsvs(self):
        builder = NetlistBuilder("no_tsv")
        clk = builder.add_clock()
        a = builder.add_input("a")
        out = builder.add_gate("INV_X1", [a])
        builder.add_flip_flop(out, clk)
        netlist = builder.finish()
        plan = WrapperPlan(die_name=netlist.name)
        plan.validate(netlist)
        wrapped, report = insert_wrappers(netlist, plan)
        assert report.wrapper_cells == 0
        assert wrapped.gate_count == netlist.gate_count
