"""Tests for the content-addressed result cache and fingerprinting."""

import json

import pytest

import repro.runtime.cache as cache_mod
from repro.atpg.engine import AtpgResult
from repro.bench.itc99 import die_profile
from repro.experiments.common import SCALES, MethodSpec, run_cell
from repro.runtime.cache import (
    ResultCache,
    WcmSummary,
    atpg_cache_key,
    atpg_result_from_payload,
    atpg_result_to_payload,
    wcm_cache_key,
)
from repro.runtime.config import configure
from repro.util.fingerprint import canonicalize, fingerprint

SMOKE = SCALES["smoke"]
SPEC = MethodSpec("ours", "tight")


@pytest.fixture
def cache(tmp_path, monkeypatch):
    """A fresh cache directory activated in the runtime config."""
    monkeypatch.setattr(cache_mod, "_CACHES", {})
    configure(cache_dir=str(tmp_path), no_cache=False)
    return cache_mod.active_cache()


class TestFingerprint:
    def test_stable_and_order_insensitive(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})

    def test_dataclasses_and_sets(self):
        profile = die_profile("b11", 0)
        assert fingerprint(profile) == fingerprint(profile)
        assert fingerprint({3, 1, 2}) == fingerprint({1, 2, 3})

    def test_float_precision_matters(self):
        assert fingerprint(0.1) != fingerprint(0.1 + 1e-12)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            canonicalize(object())


class TestKeys:
    def test_spec_changes_key(self):
        profile = die_profile("b11", 0)
        base = wcm_cache_key(profile, 2019, SPEC, 1500)
        assert base == wcm_cache_key(profile, 2019, SPEC, 1500)
        assert base != wcm_cache_key(profile, 2019,
                                     MethodSpec("agrawal", "tight"), 1500)
        assert base != wcm_cache_key(profile, 2019,
                                     MethodSpec("ours", "area"), 1500)
        assert base != wcm_cache_key(profile, 2020, SPEC, 1500)
        assert base != wcm_cache_key(profile, 2019, SPEC, 4000)
        assert base != wcm_cache_key(die_profile("b11", 1), 2019, SPEC, 1500)

    def test_schema_version_invalidates(self, monkeypatch):
        profile = die_profile("b11", 0)
        before = wcm_cache_key(profile, 2019, SPEC, 1500)
        monkeypatch.setattr(cache_mod, "CACHE_SCHEMA_VERSION", 999)
        assert wcm_cache_key(profile, 2019, SPEC, 1500) != before

    def test_atpg_key_separates_fault_models(self):
        profile = die_profile("b11", 0)
        config = SMOKE.atpg_config(profile.gates, seed=2019)
        stuck = atpg_cache_key(profile, 2019, SPEC, 1500, config, "stuck_at")
        trans = atpg_cache_key(profile, 2019, SPEC, 1500, config,
                               "transition")
        assert stuck != trans


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ab" + "0" * 62) is None
        cache.put("ab" + "0" * 62, {"x": 1})
        assert cache.get("ab" + "0" * 62) == {"x": 1}
        assert (cache.stats.hits, cache.stats.misses,
                cache.stats.stores) == (1, 1, 1)
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_corrupt_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "0" * 62
        cache.put(key, {"x": 1})
        cache.path_for(key).write_text("{not json")
        assert cache.get(key) is None
        assert cache.stats.quarantined == 1
        assert len(cache) == 0  # the bad entry no longer counts
        assert list((tmp_path / "quarantine").glob("*.json"))
        # the slot is free again: a recompute repopulates it
        cache.put(key, {"x": 2})
        assert cache.get(key) == {"x": 2}

    def test_misshapen_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps([1, 2, 3]))  # valid JSON, wrong shape
        assert cache.get(key) is None
        assert cache.stats.quarantined == 1

    def test_explicit_quarantine_of_undecodable_payload(self, tmp_path):
        # run_cell quarantines entries whose JSON parses but whose
        # payload no longer decodes (stale schema survivor)
        cache = ResultCache(tmp_path)
        key = "ab" + "1" * 62
        cache.put(key, {"schema": "wrong-shape"})
        assert cache.quarantine(key) is not None
        assert cache.get(key) is None
        assert cache.stats.quarantined == 1

    def test_failed_put_leaves_no_temp_file(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "2" * 62
        with pytest.raises(TypeError):
            cache.put(key, {"bad": object()})  # not JSON-serializable
        assert not list(tmp_path.glob("**/*.tmp"))
        assert cache.get(key) is None  # nothing half-written surfaced
        assert cache.stats.stores == 0
        # the slot still works afterwards
        cache.put(key, {"x": 1})
        assert cache.get(key) == {"x": 1}

    def test_startup_sweep_quarantines_stale_tmp(self, tmp_path):
        import os

        shard = tmp_path / "ab"
        shard.mkdir(parents=True)
        stale = shard / "orphan123.tmp"
        stale.write_text("{\"half\":")
        old = 1_000_000.0  # far older than STALE_TMP_SECONDS
        os.utime(stale, (old, old))
        fresh = shard / "inflight456.tmp"
        fresh.write_text("{")  # recent: possibly another worker's write

        cache = ResultCache(tmp_path)
        assert not stale.exists()
        assert (tmp_path / "quarantine" / "orphan123.tmp").exists()
        assert fresh.exists()  # untouched
        assert cache.stats.quarantined == 1
        assert len(cache) == 0  # temp files never counted as entries


class TestPayloadRoundTrips:
    def test_wcm_summary(self, cache):
        summary, _ = run_cell("b11", 0, 2019, SMOKE, SPEC)
        # through JSON text, as the disk does
        payload = json.loads(json.dumps(summary.to_payload()))
        restored = WcmSummary.from_payload(payload)
        assert restored == summary
        assert restored.total_graph_edges == summary.total_graph_edges
        assert restored.overlap_edges == summary.overlap_edges

    def test_atpg_result(self):
        result = AtpgResult(
            total_faults=100, detected=90, proven_untestable=4,
            aborted=6, pattern_count=12, random_patterns=8,
            deterministic_patterns=4, prebond_untestable=2,
            patterns=[0, 1, (1 << 80) + 5])
        payload = json.loads(json.dumps(atpg_result_to_payload(result)))
        assert atpg_result_from_payload(payload) == result


class TestRunCellCaching:
    def test_cold_then_warm(self, cache, monkeypatch):
        import repro.experiments.common as common

        monkeypatch.setattr(common, "_RUNS", {})
        summary, report = run_cell("b11", 0, 2019, SMOKE, SPEC,
                                   with_atpg=True)
        assert cache.stats.stores == 3  # WCM + stuck-at + transition
        stores_after_cold = cache.stats.stores

        # Warm: the flow and ATPG must not run at all.
        monkeypatch.setattr(common, "_RUNS", {})
        monkeypatch.setattr(common, "run_method", _explode)
        monkeypatch.setattr(common, "measure_testability", _explode)
        warm_summary, warm_report = run_cell("b11", 0, 2019, SMOKE, SPEC,
                                             with_atpg=True)
        assert cache.stats.stores == stores_after_cold
        assert warm_summary == summary
        assert warm_report.stuck_at == report.stuck_at
        assert warm_report.transition == report.transition

    def test_spec_change_misses(self, cache, monkeypatch):
        import repro.experiments.common as common

        monkeypatch.setattr(common, "_RUNS", {})
        run_cell("b11", 0, 2019, SMOKE, SPEC)
        stores = cache.stats.stores
        run_cell("b11", 0, 2019, SMOKE, MethodSpec("agrawal", "tight"))
        assert cache.stats.stores == stores + 1

    def test_no_cache_override(self, cache):
        configure(no_cache=True)
        assert cache_mod.active_cache() is None

    def test_disabled_without_dir(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        from repro.runtime.config import current_config
        current_config().cache_dir = None
        assert cache_mod.active_cache() is None


def _explode(*_args, **_kwargs):
    raise AssertionError("recomputed despite a warm cache")


class TestSweepLock:
    """The startup ``*.tmp`` sweep is guarded by a file lock so two
    processes starting on one cache dir cannot race the quarantine."""

    def _stale_tmp(self, tmp_path):
        import os

        shard = tmp_path / "ab"
        shard.mkdir(parents=True, exist_ok=True)
        stale = shard / "orphan789.tmp"
        stale.write_text("{\"half\":")
        os.utime(stale, (1_000_000.0, 1_000_000.0))
        return stale

    def test_contended_lock_skips_sweep_then_next_start_reaps(
            self, tmp_path):
        fcntl = pytest.importorskip("fcntl")
        from repro.runtime.cache import SWEEP_LOCK_NAME

        stale = self._stale_tmp(tmp_path)
        holder = open(tmp_path / SWEEP_LOCK_NAME, "a+")
        fcntl.flock(holder, fcntl.LOCK_EX | fcntl.LOCK_NB)
        try:
            cache = ResultCache(tmp_path)  # someone else is sweeping
            assert stale.exists()          # left alone, not raced
            assert cache.stats.quarantined == 0
            # the cache itself still works while the sweep is skipped
            key = "ab" + "7" * 62
            cache.put(key, {"x": 1})
            assert cache.get(key) == {"x": 1}
        finally:
            fcntl.flock(holder, fcntl.LOCK_UN)
            holder.close()

        swept = ResultCache(tmp_path)  # lock free again: normal sweep
        assert not stale.exists()
        assert (tmp_path / "quarantine" / "orphan789.tmp").exists()
        assert swept.stats.quarantined == 1

    def test_lock_file_does_not_count_as_an_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "9" * 62
        cache.put(key, {"x": 1})
        # whatever the sweep lock left at the root must not pollute
        # the entry count (shards only)
        assert len(cache) == 1
