"""Structured tracing layer: spans, metrics, manifests, the gate.

Covers the observability contracts the rest of the repo leans on:
span nesting and id stability in the JSONL event trail, histogram
bucketing, manifest fingerprint stability across worker counts, the
no-op fast path when tracing is off, and `repro bench gate` exit
behaviour (accepts identical timings, rejects a 20% slowdown at the
default 10% tolerance).
"""

import json
import time

import pytest

from repro.runtime import configure, trace
from repro.runtime.instrument import RunReport, collect, count, phase
from repro.runtime.supervisor import supervised_map
from repro.runtime.trace import (
    TRACE_SCHEMA_VERSION,
    GaugeStat,
    Histogram,
    MetricsRegistry,
    build_manifest,
    diff_manifests,
    gate,
    load_manifest,
    manifest_fingerprint,
    read_events,
    write_bench_json,
    write_manifest,
)


def _traced_cell(value):
    """Module-level (picklable) cell that records every metric kind."""
    trace.inc("work.items")
    trace.inc("cache.hits")  # volatile: must not enter the fingerprint
    trace.observe("clique.size", value)
    trace.set_gauge("work.value", value)
    return value * 2


# ---------------------------------------------------------------------------
# Histograms and gauges
# ---------------------------------------------------------------------------
class TestHistogram:
    def test_bucketing_with_boundary_values(self):
        histogram = Histogram((1, 10, 100))
        for value in (0, 1, 2, 10, 11, 1000):
            histogram.observe(value)
        # bisect_left: a value equal to a bound lands in that bucket
        assert histogram.counts == [2, 2, 1, 1]
        assert histogram.count == 6
        assert histogram.minimum == 0.0
        assert histogram.maximum == 1000.0

    def test_merge_requires_identical_buckets(self):
        a = Histogram((1, 2))
        b = Histogram((1, 3))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_payload_round_trip(self):
        histogram = Histogram((0.5, 5.0))
        for value in (0.1, 0.7, 9.0):
            histogram.observe(value)
        clone = Histogram.from_payload(histogram.to_payload())
        assert clone.to_payload() == histogram.to_payload()

    def test_gauge_merge_equals_serial(self):
        serial = GaugeStat()
        for value in (3, 1, 4, 1, 5):
            serial.set(value)
        left, right = GaugeStat(), GaugeStat()
        for value in (3, 1):
            left.set(value)
        for value in (4, 1, 5):
            right.set(value)
        left.merge(right)
        assert left.to_payload() == serial.to_payload()


# ---------------------------------------------------------------------------
# Spans and the event trail
# ---------------------------------------------------------------------------
class TestSpans:
    def test_nesting_ids_and_jsonl_round_trip(self, tmp_path):
        trace.start(tmp_path)
        with trace.span("outer", kind="experiment", table="t3"):
            with trace.span("inner"):
                trace.event("ping", n=1)
        trace.stop()

        events = list(read_events(tmp_path))
        by_kind = {}
        for record in events:
            by_kind.setdefault(record["ev"], []).append(record)
        assert by_kind["trace_start"][0]["schema"] == TRACE_SCHEMA_VERSION
        starts = {r["name"]: r for r in by_kind["span_start"]}
        assert starts["outer"]["parent"] is None
        assert starts["outer"]["attrs"] == {"table": "t3"}
        assert starts["inner"]["parent"] == starts["outer"]["id"]
        assert starts["inner"]["id"] != starts["outer"]["id"]
        point = by_kind["point"][0]
        assert point["name"] == "ping"
        assert point["parent"] == starts["inner"]["id"]
        ends = {r["name"]: r for r in by_kind["span_end"]}
        assert ends["outer"]["wall_s"] >= ends["inner"]["wall_s"] >= 0.0
        assert "cpu_s" in ends["outer"]
        assert by_kind["trace_end"], "trace_end must be flushed on stop"

    def test_every_line_is_valid_json(self, tmp_path):
        trace.start(tmp_path)
        with trace.span("s", note="x"):
            trace.event("e", data={"k": [1, 2]})
        trace.stop()
        with open(tmp_path / "events.jsonl", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == len(list(read_events(tmp_path)))
        for line in lines:
            json.loads(line)

    def test_error_span_records_exception_name(self, tmp_path):
        trace.start(tmp_path)
        with pytest.raises(ValueError):
            with trace.span("doomed"):
                raise ValueError("boom")
        trace.stop()
        ends = [r for r in read_events(tmp_path) if r["ev"] == "span_end"]
        assert ends[0]["error"] == "ValueError"

    def test_phase_opens_span_under_tracer(self, tmp_path):
        trace.start(tmp_path)
        with phase("wcm.partition"):
            count("clique.merges", 3)
        tracer = trace.stop()
        names = [r["name"] for r in read_events(tmp_path)
                 if r["ev"] == "span_start"]
        assert "wcm.partition" in names
        assert tracer.metrics.counters["clique.merges"] == 3
        assert "wcm.partition" in tracer.bench_timings()


# ---------------------------------------------------------------------------
# No-op fast path
# ---------------------------------------------------------------------------
class TestNoopMode:
    def test_zero_events_written_without_tracer(self, tmp_path, monkeypatch):
        assert trace.active() is None
        monkeypatch.chdir(tmp_path)
        with trace.span("s"):
            trace.event("e")
            trace.inc("c")
            trace.observe("h", 1.0)
        with phase("p"):
            count("c")
        assert list(tmp_path.rglob("events*.jsonl")) == []

    def test_span_helper_returns_shared_noop(self):
        assert trace.span("a") is trace.span("b")

    def test_overhead_is_bounded(self):
        # 200k no-op counts must stay well under a second: the off
        # path is one global read, no allocation, no I/O.
        started = time.perf_counter()
        for _ in range(200_000):
            count("hot.counter")
            trace.inc("hot.counter")
        elapsed = time.perf_counter() - started
        assert elapsed < 2.0, f"no-op path too slow: {elapsed:.3f}s"


# ---------------------------------------------------------------------------
# Worker metric ship-back and manifest fingerprint stability
# ---------------------------------------------------------------------------
def _rollup_for_jobs(tmp_path, jobs):
    configure(trace_dir=str(tmp_path))
    sweep = supervised_map(_traced_cell, [3, 1, 4, 1, 5, 9, 2, 6],
                           jobs=jobs, seed=7, label="trace-test")
    assert sweep.ok
    tracer = trace.active()
    manifest = build_manifest(
        "trace-test", config={"jobs-independent": True}, seed=7,
        scale="smoke", result_fingerprint="r", metrics=tracer.metrics,
        timings=tracer.bench_timings())
    trace.stop()
    return manifest


class TestFingerprintStability:
    def test_manifest_identical_serial_vs_parallel(self, tmp_path):
        serial = _rollup_for_jobs(tmp_path / "j1", jobs=1)
        parallel = _rollup_for_jobs(tmp_path / "j4", jobs=4)
        assert serial["metrics"] == parallel["metrics"]
        assert serial["fingerprint"] == parallel["fingerprint"]
        # the volatile counter was recorded but kept out of the print
        assert "cache.hits" not in serial["metrics"]["counters"]
        assert serial["volatile_metrics"]["counters"]["cache.hits"] == 8
        # timings differ between runs yet never affect the fingerprint
        assert serial["timings"] != {} and parallel["timings"] != {}

    def test_worker_events_land_on_disk(self, tmp_path):
        configure(trace_dir=str(tmp_path))
        supervised_map(_traced_cell, [1, 2, 3, 4], jobs=2, seed=7,
                       label="workers")
        trace.stop()
        names = [r.get("name") for r in read_events(tmp_path)]
        assert names.count("cell") >= 4  # span per cell, worker logs
        assert (tmp_path / "events.jsonl").exists()
        assert list(tmp_path.glob("events-w*.jsonl"))


# ---------------------------------------------------------------------------
# Manifests, diff, gate
# ---------------------------------------------------------------------------
def _manifest(timings=None, counter=5):
    registry = MetricsRegistry()
    registry.inc("work.items", counter)
    return build_manifest("t", config={"scale": "smoke"}, seed=1,
                          scale="smoke", result_fingerprint="abc",
                          metrics=registry, timings=timings)


class TestManifest:
    def test_fingerprint_ignores_timings_and_git(self):
        a = _manifest(timings={"k": {"mean_s": 0.1, "min_s": 0.1,
                                     "stddev_s": 0.0, "rounds": 3}})
        b = _manifest(timings=None)
        b["git"] = "somewhere-else"
        assert a["fingerprint"] == b["fingerprint"]
        assert manifest_fingerprint(b) == b["fingerprint"]

    def test_fingerprint_tracks_metrics(self):
        assert _manifest()["fingerprint"] != \
            _manifest(counter=6)["fingerprint"]

    def test_write_load_round_trip(self, tmp_path):
        payload = _manifest()
        path = write_manifest(tmp_path / "m.json", payload)
        assert load_manifest(path) == payload

    def test_load_normalizes_raw_bench_json(self, tmp_path):
        timings = {"kern": {"mean_s": 0.01, "min_s": 0.009,
                            "stddev_s": 0.001, "rounds": 5}}
        path = write_bench_json(tmp_path / "BENCH_x.json", timings)
        manifest = load_manifest(path)
        assert manifest["timings"] == timings
        assert manifest["fingerprint"] is None
        assert manifest["label"] is None

    def test_diff_reports_metric_change_readably(self):
        golden, candidate = _manifest(), _manifest(counter=9)
        problems = diff_manifests(golden, candidate)
        assert any("work.items" in p for p in problems)
        assert any("expected 5" in p and "got 9" in p for p in problems)


class TestBenchGate:
    TIMINGS = {"kernel": {"mean_s": 0.100, "min_s": 0.09,
                          "stddev_s": 0.002, "rounds": 5}}

    def _paths(self, tmp_path, candidate_mean):
        golden = write_bench_json(tmp_path / "golden.json", self.TIMINGS)
        slowed = {"kernel": dict(self.TIMINGS["kernel"],
                                 mean_s=candidate_mean)}
        candidate = write_bench_json(tmp_path / "candidate.json", slowed)
        return candidate, golden

    def test_accepts_identical(self, tmp_path):
        candidate, golden = self._paths(tmp_path, 0.100)
        ok, lines = gate(candidate, golden)
        assert ok and any("gate: OK" in line for line in lines)

    def test_rejects_twenty_percent_slowdown(self, tmp_path):
        candidate, golden = self._paths(tmp_path, 0.120)
        ok, lines = gate(candidate, golden)
        assert not ok
        assert any("gate: FAIL" in line for line in lines)
        assert any("kernel" in line and "%" in line for line in lines)

    def test_being_faster_passes(self, tmp_path):
        candidate, golden = self._paths(tmp_path, 0.050)
        ok, _lines = gate(candidate, golden)
        assert ok

    def test_cli_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        candidate, golden = self._paths(tmp_path, 0.120)
        assert main(["bench", "gate", str(candidate),
                     "--golden", str(golden)]) == 1
        assert "gate: FAIL" in capsys.readouterr().out
        assert main(["bench", "gate", str(golden),
                     "--golden", str(golden)]) == 0
        assert main(["bench", "gate", str(candidate),
                     "--golden", str(golden), "--tolerance", "25"]) == 0

    def test_cli_trace_show_and_diff(self, tmp_path, capsys):
        from repro.cli import main

        a = write_manifest(tmp_path / "a.json", _manifest())
        b = write_manifest(tmp_path / "b.json", _manifest(counter=9))
        assert main(["trace", "show", str(a)]) == 0
        assert "work.items" in capsys.readouterr().out
        assert main(["trace", "diff", str(a), str(a)]) == 0
        capsys.readouterr()
        assert main(["trace", "diff", str(a), str(b)]) == 1
        assert "work.items" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# RunReport drift fixes (phase re-entrancy, payload/render agreement)
# ---------------------------------------------------------------------------
class TestRunReportConsistency:
    def test_reentrant_same_name_phase_not_double_counted(self):
        with collect() as report:
            started = time.perf_counter()
            with phase("repair"):
                time.sleep(0.02)
                with phase("repair"):
                    time.sleep(0.02)
            wall = time.perf_counter() - started
        stat = report.phases["repair"]
        assert stat.calls == 2
        # the outermost entry charges the whole elapsed time once; a
        # double-count would report ~1.5x the real wall-clock
        assert stat.seconds == pytest.approx(wall, abs=0.02)
        assert report.total_seconds <= wall + 0.02

    def test_nested_collect_plus_merge_equals_flat_run(self):
        outer = RunReport()
        with collect(outer):
            count("a")
            inner = RunReport()
            with collect(inner):
                count("a")
                count("b")
            count("a")
        outer.merge(inner)
        flat = RunReport()
        with collect(flat):
            for _ in range(3):
                count("a")
            count("b")
        assert outer.counters == flat.counters

    def test_payload_and_render_agree_after_merge(self):
        a, b = RunReport(), RunReport()
        with collect(a):
            count("x", 2)
            with phase("p"):
                pass
        with collect(b):
            count("x", 3)
            with phase("p"):
                pass
        a.merge(b)
        payload = a.to_payload()
        assert payload["counters"]["x"] == 5
        assert payload["phases"]["p"]["calls"] == 2
        assert payload["total_seconds"] == pytest.approx(a.total_seconds)
        rendered = a.render()
        assert "x" in rendered and "5" in rendered and "p" in rendered
        clone = RunReport.from_payload(payload)
        assert clone.to_payload() == payload
