"""Cross-process determinism: results must not depend on PYTHONHASHSEED.

The two historical offenders — the FF-adoption candidate scan iterating
a *set* of FF-name strings, and the clique partitioner's "first 64
neighbours" sample taken in set-iteration order — only misbehave when
the string hash seed actually differs between processes, which a single
in-process test can never show. So these tests run the flow in fresh
subprocesses pinned to different ``PYTHONHASHSEED`` values and compare
fingerprints of everything the tables report.
"""

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[1] / "src")

_FLOW_SCRIPT = """
import json
from repro.bench import die_profile, generate_die
from repro.core import Scenario, WcmConfig, build_problem, run_wcm_flow
from repro.core.problem import tight_clock_for
from repro.runtime.cache import WcmSummary
from repro.util.fingerprint import fingerprint

netlist = generate_die(die_profile("b11", 0), seed=2019)
problem = build_problem(netlist)
clock = tight_clock_for(problem)
tight = problem.retime(clock)
prints = []
for method in ("agrawal", "ours"):
    config = getattr(WcmConfig, method)(
        Scenario.performance_optimized(clock.period_ps))
    run = run_wcm_flow(tight, config)
    summary = WcmSummary.from_run(run)
    prints.append(f"{method} {fingerprint(summary.to_payload())}")
print("\\n".join(prints))
"""


def _run_under_hashseed(script: str, hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = SRC
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, env=env, timeout=600)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestHashSeedIndependence:
    def test_flow_results_identical_across_hash_seeds(self):
        first = _run_under_hashseed(_FLOW_SCRIPT, "0")
        second = _run_under_hashseed(_FLOW_SCRIPT, "1")
        assert first == second
        assert "agrawal " in first and "ours " in first

    def test_hash_order_actually_differs(self):
        """Sanity: the two subprocesses really do iterate string sets
        differently (otherwise the test above proves nothing)."""
        probe = ("print(list({'ff_%d' % i for i in range(50)}))")
        assert _run_under_hashseed(probe, "0") != \
            _run_under_hashseed(probe, "1")
