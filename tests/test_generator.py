"""Tests for the calibrated die generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.generator import DieGeneratorConfig, generate_die
from repro.bench.itc99 import (
    CIRCUITS,
    TABLE_II,
    all_die_profiles,
    average_stats,
    die_profile,
    profiles_for_circuit,
)
from repro.netlist.topology import combinational_levels, topological_instances
from repro.netlist.validate import validate_netlist
from repro.netlist.verilog import write_verilog
from repro.util.errors import ConfigError


class TestProfiles:
    def test_all_24_profiles(self):
        assert len(all_die_profiles()) == 24

    def test_unknown_circuit_raises(self):
        with pytest.raises(ConfigError):
            die_profile("b99", 0)
        with pytest.raises(ConfigError):
            profiles_for_circuit("b99")

    def test_profile_values_match_table(self):
        profile = die_profile("b18", 1)
        assert profile.scan_flip_flops == 1033
        assert profile.gates == 26698
        assert profile.inbound_tsvs == 1561
        assert profile.outbound_tsvs == 1875
        assert profile.tsvs == 3436

    def test_average_row_matches_paper(self):
        avg = average_stats()
        assert avg["scan_flip_flops"] == pytest.approx(194.04, abs=0.01)
        assert avg["gates"] == pytest.approx(8522.67, abs=0.01)
        assert avg["tsvs"] == pytest.approx(1064.54, abs=0.01)

    def test_circuit_list(self):
        assert CIRCUITS == ("b11", "b12", "b18", "b20", "b21", "b22")


class TestGeneratedStructure:
    @pytest.mark.parametrize("circuit,die", [
        ("b11", 0), ("b11", 2), ("b12", 1), ("b12", 3),
    ])
    def test_counts_match_profile_exactly(self, circuit, die):
        profile = die_profile(circuit, die)
        netlist = generate_die(profile, seed=7)
        stats = netlist.stats()
        assert stats["gates"] == profile.gates
        assert stats["scan_flip_flops"] == profile.scan_flip_flops
        assert stats["inbound_tsvs"] == profile.inbound_tsvs
        assert stats["outbound_tsvs"] == profile.outbound_tsvs

    def test_determinism(self):
        profile = die_profile("b12", 2)
        a = generate_die(profile, seed=11)
        b = generate_die(profile, seed=11)
        assert write_verilog(a) == write_verilog(b)

    def test_seed_changes_structure(self):
        profile = die_profile("b12", 2)
        a = generate_die(profile, seed=11)
        b = generate_die(profile, seed=12)
        assert write_verilog(a) != write_verilog(b)

    def test_validates_structurally(self):
        netlist = generate_die(die_profile("b12", 0), seed=5)
        validate_netlist(netlist)  # raises on structural errors

    def test_depth_hard_bounded(self):
        config = DieGeneratorConfig(max_depth=8)
        netlist = generate_die(die_profile("b12", 1), seed=5, config=config)
        levels = combinational_levels(netlist)
        assert max(levels.values()) <= 8

    def test_acyclic(self):
        netlist = generate_die(die_profile("b11", 3), seed=5)
        order = topological_instances(netlist)
        assert len(order) == netlist.gate_count

    def test_every_inbound_tsv_drives_logic(self):
        netlist = generate_die(die_profile("b12", 1), seed=5)
        for port in netlist.inbound_tsvs():
            assert netlist.net(port.net).sinks, f"{port.name} floats"

    def test_fanout_caps_respected_for_tsvs(self):
        config = DieGeneratorConfig()
        netlist = generate_die(die_profile("b12", 1), seed=5, config=config)
        for port in netlist.inbound_tsvs():
            fanout = len(netlist.net(port.net).sinks)
            assert fanout <= config.max_hub_fanout

    def test_dangling_nets_rare(self):
        netlist = generate_die(die_profile("b12", 1), seed=5)
        warnings = validate_netlist(netlist)
        dangling = [w for w in warnings if "no sinks" in w]
        assert len(dangling) <= netlist.gate_count * 0.02

    def test_scan_ffs_unstitched_initially(self):
        netlist = generate_die(die_profile("b11", 0), seed=5)
        for ff in netlist.scan_flip_flops():
            assert "SI" not in ff.connections

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_counts_hold_for_any_seed(self, seed):
        profile = die_profile("b11", 0)
        stats = generate_die(profile, seed=seed).stats()
        assert stats["gates"] == profile.gates
        assert stats["scan_flip_flops"] == profile.scan_flip_flops
