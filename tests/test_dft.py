"""Tests for DFT passes: scan stitching, wrapper plans/insertion, views."""

import pytest

from repro.dft.cones import ConeAnalysis
from repro.dft.scan import stitch_scan_chains, unstitch_scan_chains
from repro.dft.testview import build_prebond_test_view
from repro.dft.wrapper import (
    WrapperGroup,
    WrapperPlan,
    dedicated_plan,
    insert_wrappers,
)
from repro.bench.generator import generate_die
from repro.bench.itc99 import die_profile
from repro.netlist.core import PortKind
from repro.netlist.validate import validate_netlist
from repro.place.placer import place_die
from repro.util.errors import NetlistError


@pytest.fixture()
def fresh_die():
    netlist = generate_die(die_profile("b11", 0), seed=21)
    place_die(netlist)
    return netlist


class TestScanStitching:
    def test_single_chain_covers_all_ffs(self, fresh_die):
        chains = stitch_scan_chains(fresh_die)
        assert len(chains) == 1
        assert chains[0].length == len(fresh_die.scan_flip_flops())
        for ff in fresh_die.scan_flip_flops():
            assert "SI" in ff.connections and "SE" in ff.connections

    def test_chain_order_is_connected(self, fresh_die):
        chains = stitch_scan_chains(fresh_die)
        chain = chains[0]
        previous = fresh_die.net(f"scan_in{chain.index}")
        for name in chain.flip_flops:
            ff = fresh_die.instance(name)
            assert ff.connections["SI"] == previous.name
            previous = fresh_die.net(ff.output_net())

    def test_multiple_chains_balanced(self, fresh_die):
        chains = stitch_scan_chains(fresh_die, chain_count=3)
        sizes = [c.length for c in chains]
        assert sum(sizes) == len(fresh_die.scan_flip_flops())
        assert max(sizes) - min(sizes) <= 2

    def test_double_stitch_rejected(self, fresh_die):
        stitch_scan_chains(fresh_die)
        with pytest.raises(NetlistError):
            stitch_scan_chains(fresh_die)

    def test_restitch_after_unstitch(self, fresh_die):
        stitch_scan_chains(fresh_die)
        unstitch_scan_chains(fresh_die)
        for ff in fresh_die.scan_flip_flops():
            assert "SI" not in ff.connections
        chains = stitch_scan_chains(fresh_die)
        assert chains[0].length == len(fresh_die.scan_flip_flops())


class TestWrapperPlan:
    def test_dedicated_plan_counts(self, fresh_die):
        plan = dedicated_plan(fresh_die)
        assert plan.reused_scan_ff_count == 0
        assert plan.additional_wrapper_cells == fresh_die.tsv_count
        assert plan.wrapped_tsv_count == fresh_die.tsv_count
        plan.validate(fresh_die)

    def test_missing_tsv_rejected(self, fresh_die):
        plan = dedicated_plan(fresh_die)
        plan.groups.pop()
        with pytest.raises(NetlistError, match="unwrapped"):
            plan.validate(fresh_die)

    def test_duplicate_tsv_rejected(self, fresh_die):
        plan = dedicated_plan(fresh_die)
        plan.groups.append(WrapperGroup(
            kind=plan.groups[0].kind, tsvs=list(plan.groups[0].tsvs)))
        with pytest.raises(NetlistError, match="two groups"):
            plan.validate(fresh_die)

    def test_kind_mismatch_rejected(self, fresh_die):
        inbound = fresh_die.inbound_tsvs()[0].name
        with pytest.raises(NetlistError):
            WrapperPlan(
                die_name=fresh_die.name,
                groups=[WrapperGroup(kind=PortKind.TSV_OUTBOUND,
                                     tsvs=[inbound])],
            ).validate(fresh_die)

    def test_ff_multi_reuse_allowed_inbound_only_once_outbound(self, fresh_die):
        ff = fresh_die.scan_flip_flops()[0].name
        ins = [p.name for p in fresh_die.inbound_tsvs()]
        outs = [p.name for p in fresh_die.outbound_tsvs()]
        groups = [
            WrapperGroup(PortKind.TSV_INBOUND, ins[:2], reused_ff=ff),
            WrapperGroup(PortKind.TSV_INBOUND, ins[2:], reused_ff=ff),
            WrapperGroup(PortKind.TSV_OUTBOUND, outs[:1], reused_ff=ff),
            WrapperGroup(PortKind.TSV_OUTBOUND, outs[1:]),
        ]
        plan = WrapperPlan(die_name=fresh_die.name, groups=groups)
        plan.validate(fresh_die)  # two inbound adoptions are fine
        plan.groups[3] = WrapperGroup(PortKind.TSV_OUTBOUND, outs[1:],
                                      reused_ff=ff)
        with pytest.raises(NetlistError, match="two outbound"):
            plan.validate(fresh_die)

    def test_empty_group_rejected(self):
        with pytest.raises(NetlistError):
            WrapperGroup(PortKind.TSV_INBOUND, [])


class TestInsertion:
    def test_dedicated_insertion_structure(self, fresh_die):
        stitch_scan_chains(fresh_die)
        wrapped, report = insert_wrappers(fresh_die, dedicated_plan(fresh_die))
        assert report.wrapper_cells == fresh_die.tsv_count
        assert report.muxes == len(fresh_die.inbound_tsvs())
        assert report.xors == 0  # singleton outbound groups chain nothing
        stitch_scan_chains(wrapped, restitch=True)
        validate_netlist(wrapped, allow_undriven_nets=True)

    def test_original_untouched(self, fresh_die):
        stitch_scan_chains(fresh_die)
        before = fresh_die.stats()
        insert_wrappers(fresh_die, dedicated_plan(fresh_die))
        assert fresh_die.stats() == before

    def test_reuse_insertion_wiring(self, fresh_die):
        stitch_scan_chains(fresh_die)
        ff = fresh_die.scan_flip_flops()[0].name
        inbound = fresh_die.inbound_tsvs()[0].name
        outs = [p.name for p in fresh_die.outbound_tsvs()]
        groups = [WrapperGroup(PortKind.TSV_INBOUND, [inbound],
                               reused_ff=ff),
                  WrapperGroup(PortKind.TSV_OUTBOUND, outs[:2],
                               reused_ff=ff)]
        for port in fresh_die.inbound_tsvs()[1:]:
            groups.append(WrapperGroup(PortKind.TSV_INBOUND, [port.name]))
        for name in outs[2:]:
            groups.append(WrapperGroup(PortKind.TSV_OUTBOUND, [name]))
        plan = WrapperPlan(die_name=fresh_die.name, groups=groups)
        wrapped, report = insert_wrappers(fresh_die, plan)
        assert report.reused_ffs == 2
        # the FF's D now comes through a mux, with a 2-deep XOR chain
        ff_inst = wrapped.instance(ff)
        d_driver = wrapped.net(ff_inst.connections["D"]).driver
        assert d_driver.owner_name.startswith("wrapmux")
        assert report.xors == 2
        # test-mode port added exactly once
        assert len(wrapped.ports_of_kind(PortKind.TEST_MODE)) == 1
        # mux_out mapping covers the reused inbound TSV
        assert inbound in report.mux_out_nets

    def test_group_instances_alignment(self, fresh_die):
        stitch_scan_chains(fresh_die)
        plan = dedicated_plan(fresh_die)
        _wrapped, report = insert_wrappers(fresh_die, plan)
        assert len(report.group_instances) == len(plan.groups)
        assert all(report.group_instances)


class TestTestView:
    def test_view_contents(self, fresh_die):
        stitch_scan_chains(fresh_die)
        wrapped, _ = insert_wrappers(fresh_die, dedicated_plan(fresh_die))
        stitch_scan_chains(wrapped, restitch=True)
        view = build_prebond_test_view(wrapped)
        # every FF (incl. wrapper cells) is controllable and observable
        ff_count = len(wrapped.flip_flops())
        assert sum(1 for _l, n in view.observe_nets) >= ff_count
        assert view.input_count >= ff_count
        # inbound TSVs float
        assert len(view.x_nets) == len(wrapped.inbound_tsvs())
        # test_mode pinned to 1, scan_enable to 0
        assert 1 in view.constant_nets.values()
        assert 0 in view.constant_nets.values()

    def test_outbound_ports_not_observed(self, fresh_die):
        view = build_prebond_test_view(fresh_die)
        outbound_nets = {p.net for p in fresh_die.outbound_tsvs()}
        observed = {net for _l, net in view.observe_nets}
        ff_d_nets = {ff.connections.get("D")
                     for ff in fresh_die.flip_flops()}
        # outbound nets observed only if they happen to feed an FF D
        assert not (outbound_nets & observed) - ff_d_nets


class TestConeAnalysis:
    def test_gate_cone_excludes_ports(self, fresh_die):
        cones = ConeAnalysis(fresh_die)
        tsv = fresh_die.outbound_tsvs()[0].name
        gate_cone = cones.gate_cone(tsv, PortKind.TSV_OUTBOUND)
        for item in gate_cone:
            assert item in fresh_die.instances
            assert not fresh_die.instances[item].is_sequential

    def test_overlap_symmetry(self, fresh_die):
        cones = ConeAnalysis(fresh_die)
        tsvs = [p.name for p in fresh_die.inbound_tsvs()][:6]
        for a in tsvs:
            for b in tsvs:
                if a == b:
                    continue
                assert cones.overlaps(a, b, PortKind.TSV_INBOUND) == \
                    cones.overlaps(b, a, PortKind.TSV_INBOUND)

    def test_overlap_matches_set_intersection(self, fresh_die):
        cones = ConeAnalysis(fresh_die)
        tsvs = [p.name for p in fresh_die.inbound_tsvs()][:6]
        for a in tsvs[:3]:
            for b in tsvs[3:]:
                region = cones.overlap(a, b, PortKind.TSV_INBOUND)
                assert bool(region) == cones.overlaps(a, b,
                                                      PortKind.TSV_INBOUND)
