"""Tests for the end-to-end WCM flow, baselines and the repair loop."""

import pytest

from repro.core.config import Scenario, WcmConfig
from repro.core.flow import decide_order, measure_testability, run_wcm_flow
from repro.core.li import run_li_reuse_once
from repro.dft.wrapper import dedicated_plan
from repro.atpg.engine import AtpgConfig
from repro.netlist.core import PortKind


@pytest.fixture(scope="module")
def area_runs(medium_problem):
    area = Scenario.area_optimized()
    agrawal = run_wcm_flow(medium_problem, WcmConfig.agrawal(area))
    ours = run_wcm_flow(medium_problem, WcmConfig.ours(area))
    return agrawal, ours


@pytest.fixture(scope="module")
def tight_runs(medium_scenarios):
    _area, tight, problem = medium_scenarios
    agrawal = run_wcm_flow(problem, WcmConfig.agrawal(tight))
    ours = run_wcm_flow(problem, WcmConfig.ours(tight))
    return agrawal, ours


class TestOrdering:
    def test_ours_starts_from_larger_set(self, medium_problem):
        config = WcmConfig.ours(Scenario.area_optimized())
        order = decide_order(medium_problem, config)
        inbound = len(medium_problem.inbound_tsvs)
        outbound = len(medium_problem.outbound_tsvs)
        first = order[0]
        if outbound > inbound:
            assert first is PortKind.TSV_OUTBOUND
        else:
            assert first is PortKind.TSV_INBOUND

    def test_agrawal_always_inbound_first(self, medium_problem):
        config = WcmConfig.agrawal(Scenario.area_optimized())
        assert decide_order(medium_problem, config)[0] \
            is PortKind.TSV_INBOUND


class TestFlowResults:
    def test_plans_valid_and_complete(self, area_runs, medium_problem):
        for run in area_runs:
            run.plan.validate(medium_problem.netlist)
            assert run.plan.wrapped_tsv_count \
                == medium_problem.netlist.tsv_count

    def test_reuse_beats_dedicated_baseline(self, area_runs,
                                            medium_problem):
        """Both methods must beat wrapper-cells-everywhere [13]."""
        dedicated = dedicated_plan(medium_problem.netlist)
        for run in area_runs:
            assert run.additional_wrapper_cells \
                < dedicated.additional_wrapper_cells

    def test_ours_fewer_or_equal_additional_in_area(self, area_runs):
        agrawal, ours = area_runs
        assert ours.additional_wrapper_cells \
            <= agrawal.additional_wrapper_cells

    def test_area_runs_never_violate(self, area_runs):
        for run in area_runs:
            assert not run.timing_violation

    def test_ours_no_violation_under_tight_timing(self, tight_runs):
        _agrawal, ours = tight_runs
        assert not ours.timing_violation

    def test_agrawal_violates_under_tight_timing(self, tight_runs):
        """The headline Table III contrast on this die (b12_die1 is one
        of the paper's 20/24 violating dies)."""
        agrawal, _ours = tight_runs
        assert agrawal.timing_violation

    def test_wrapped_netlist_metrics_match_plan(self, area_runs):
        for run in area_runs:
            assert run.insertion.wrapper_cells \
                == run.additional_wrapper_cells
            assert run.insertion.reused_ffs == run.reused_scan_ffs

    def test_graph_stats_present_for_both_kinds(self, area_runs):
        for run in area_runs:
            assert set(run.graph_stats) \
                == {"tsv_inbound", "tsv_outbound"}


class TestRepair:
    def test_repair_only_for_ours(self, tight_runs):
        agrawal, ours = tight_runs
        # Agrawal ships its first answer: violations stay
        assert agrawal.timing_violation
        assert not ours.timing_violation

    def test_repair_disabled_keeps_plan(self, medium_scenarios):
        from dataclasses import replace
        _area, tight, problem = medium_scenarios
        config = replace(WcmConfig.ours(tight), signoff_repair=False)
        run = run_wcm_flow(problem, config)
        # without repair the raw plan may violate, but must be complete
        run.plan.validate(problem.netlist)


class TestLiBaseline:
    def test_reuse_once_properties(self, medium_problem):
        config = WcmConfig.agrawal(Scenario.area_optimized())
        plan = run_li_reuse_once(medium_problem, config)
        plan.validate(medium_problem.netlist)
        # no sharing at all: every group is a singleton
        assert all(len(g.tsvs) == 1 for g in plan.groups)
        # each FF used at most once across the whole plan
        ffs = [g.reused_ff for g in plan.groups if g.reused_ff]
        assert len(ffs) == len(set(ffs))

    def test_li_worse_than_agrawal(self, medium_problem, area_runs):
        """[3] reuses each FF once; [4] shares — so [4] needs fewer
        additional cells."""
        agrawal, _ours = area_runs
        config = WcmConfig.agrawal(Scenario.area_optimized())
        li_plan = run_li_reuse_once(medium_problem, config)
        assert agrawal.additional_wrapper_cells \
            <= li_plan.additional_wrapper_cells


class TestTestabilityMeasurement:
    def test_measure_testability_smoke(self, area_runs):
        agrawal, _ours = area_runs
        report = measure_testability(
            agrawal,
            AtpgConfig(seed=5, block_width=64, max_random_blocks=4,
                       podem_fault_limit=100, fault_sample=400),
            include_transition=True,
        )
        assert 0.5 < report.stuck_at.coverage <= 1.0
        assert report.stuck_at_pair[1] == report.stuck_at.pattern_count
        assert report.transition is not None
        assert 0.0 < report.transition.coverage <= 1.0
