"""Tests for WCM scenarios and method presets."""

import math

import pytest

from repro.core.config import Scenario, WcmConfig
from repro.netlist.library import DEFAULT_CAP_TH_FF
from repro.util.errors import ConfigError


class TestScenario:
    def test_area_scenario_keeps_library_cap(self):
        scenario = Scenario.area_optimized()
        assert not scenario.is_timed
        assert scenario.cap_th_ff == DEFAULT_CAP_TH_FF
        assert scenario.s_th_ps == -math.inf

    def test_tight_scenario(self):
        scenario = Scenario.performance_optimized(1000.0)
        assert scenario.is_timed
        assert scenario.clock.period_ps == 1000.0
        with pytest.raises(ConfigError):
            Scenario.performance_optimized(-5.0)


class TestPresets:
    def test_ours_preset(self):
        config = WcmConfig.ours(Scenario.area_optimized())
        assert config.use_wire_delay
        assert config.order_by_set_size
        assert config.allow_overlap
        assert config.signoff_repair
        assert config.d_th_fraction == 0.8

    def test_agrawal_preset(self):
        config = WcmConfig.agrawal(Scenario.area_optimized())
        assert not config.use_wire_delay
        assert not config.order_by_set_size
        assert not config.allow_overlap
        assert not config.signoff_repair
        assert math.isinf(config.d_th_um)
        assert config.d_th_fraction is None

    def test_without_overlap_variant(self):
        config = WcmConfig.ours(Scenario.area_optimized()).without_overlap()
        assert not config.allow_overlap
        assert config.use_wire_delay  # everything else unchanged

    def test_paper_testability_thresholds(self):
        config = WcmConfig.ours(Scenario.area_optimized())
        assert config.cov_th == pytest.approx(0.005)
        assert config.p_th == 10

    def test_invalid_thresholds_rejected(self):
        scenario = Scenario.area_optimized()
        with pytest.raises(ConfigError):
            WcmConfig(scenario=scenario, cov_th=-0.1)
        with pytest.raises(ConfigError):
            WcmConfig(scenario=scenario, p_th=-1)
        with pytest.raises(ConfigError):
            WcmConfig(scenario=scenario, estimator_mode="psychic")
