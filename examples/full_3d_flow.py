#!/usr/bin/env python3
"""Full 3D flow from a flat 2D netlist.

This is the flow a user with their own design would run: take a flat
gate-level circuit, partition it into a 4-die stack with the FM min-cut
partitioner (3D-Craft stand-in), and run pre-bond wrapper-cell
minimization on every die. Inbound/outbound TSV sets arise from the cut
nets rather than from the calibrated generator.

Run:  python examples/full_3d_flow.py
"""

from repro.bench import die_profile, generate_die
from repro.core import Scenario, WcmConfig, build_problem, run_wcm_flow
from repro.dft import unstitch_scan_chains
from repro.threed import PartitionConfig, partition_into_stack
from repro.util.tables import AsciiTable


def main() -> None:
    # Any flat netlist works here; we reuse a generated circuit as the
    # "customer design" (b11/die1-sized, ~234 gates).
    flat = generate_die(die_profile("b11", 1), seed=42)
    print(f"Flat 2D design: {flat.gate_count} gates, "
          f"{len(flat.flip_flops())} FFs")

    print("Partitioning into a 4-die stack (FM min-cut)...")
    stack, assignment = partition_into_stack(
        flat, PartitionConfig(num_dies=4, seed=42))
    for index, die in enumerate(stack.dies):
        stats = die.stats()
        print(f"  die{index}: {stats['gates']:4d} gates, "
              f"{stats['inbound_tsvs']:3d} inbound / "
              f"{stats['outbound_tsvs']:3d} outbound TSVs")
    bonded = sum(1 for link in stack.links if not link.is_external)
    print(f"  {bonded} bonded TSV links, "
          f"{len(stack.links) - bonded} external")

    table = AsciiTable(["die", "#TSVs", "#reused FFs", "#additional",
                        "vs dedicated [13]"],
                       title="\nPre-bond wrapper minimization per die "
                             "(ours, area scenario)")
    scenario = Scenario.area_optimized()
    for index, die in enumerate(stack.dies):
        if not die.scan_flip_flops() or die.tsv_count == 0:
            continue
        problem = build_problem(die)
        run = run_wcm_flow(problem, WcmConfig.ours(scenario))
        saved = die.tsv_count - run.additional_wrapper_cells
        table.add_row([f"die{index}", die.tsv_count, run.reused_scan_ffs,
                       run.additional_wrapper_cells,
                       f"-{saved} cells"])
    print(table.render())


if __name__ == "__main__":
    main()
