#!/usr/bin/env python3
"""Sweep the clock margin: how timing pressure shapes wrapper reuse.

Between the paper's two extremes ("no timing" and "very tight") lies a
whole curve: as the clock period tightens toward the reference critical
path, the accurate timing model admits fewer reuse/sharing decisions
and the additional-cell count rises — while the load-only model of [4]
keeps emitting the same optimistic plan and starts failing sign-off.

Run:  python examples/timing_tradeoff.py
"""

from repro.bench import die_profile, generate_die
from repro.core import Scenario, WcmConfig, build_problem, run_wcm_flow
from repro.util.tables import AsciiTable


def main() -> None:
    netlist = generate_die(die_profile("b12", 2), seed=2019)
    problem = build_problem(netlist)
    reference = problem.dedicated_critical_path_ps
    print(f"{netlist.name}: reference critical path {reference:.0f} ps")

    table = AsciiTable(
        ["margin", "period (ps)",
         "ours: reused/additional", "ours viol",
         "Agrawal: reused/additional", "Agrawal viol"],
        title="\nClock-margin sweep",
    )
    for margin in (0.50, 0.25, 0.12, 0.08, 0.05):
        period = reference * (1.0 + margin)
        scenario = Scenario.performance_optimized(period)
        problem_t = problem.retime(scenario.clock)
        ours = run_wcm_flow(problem_t, WcmConfig.ours(scenario))
        agrawal = run_wcm_flow(problem_t, WcmConfig.agrawal(scenario))
        table.add_row([
            f"+{margin:.0%}", f"{period:.0f}",
            f"{ours.reused_scan_ffs}/{ours.additional_wrapper_cells}",
            "X" if ours.timing_violation else "-",
            f"{agrawal.reused_scan_ffs}/"
            f"{agrawal.additional_wrapper_cells}",
            "X" if agrawal.timing_violation else "-",
        ])
    print(table.render())
    print("\nReading: as margin shrinks, ours trades cells for timing")
    print("closure; [4] never pays — and fails sign-off instead.")


if __name__ == "__main__":
    main()
