#!/usr/bin/env python3
"""Quickstart: wrapper-cell minimization on one 3D-IC die.

Generates the b12/die1 benchmark die (calibrated to the paper's Table
II), prepares it (scan stitching, placement, baseline STA), then runs
the full Fig.-6 flow with both methods under both timing scenarios and
prints the head-to-head comparison — a miniature of the paper's Table
III row for this die.

Run:  python examples/quickstart.py
"""

from repro.bench import die_profile, generate_die
from repro.core import Scenario, WcmConfig, build_problem, run_wcm_flow
from repro.core.problem import tight_clock_for
from repro.util.tables import AsciiTable


def main() -> None:
    profile = die_profile("b12", 1)
    print(f"Generating {profile.name}: {profile.gates} gates, "
          f"{profile.scan_flip_flops} scan FFs, "
          f"{profile.inbound_tsvs}+{profile.outbound_tsvs} TSVs")
    netlist = generate_die(profile, seed=2019)

    print("Preparing die (scan stitch, placement, reference STA)...")
    problem = build_problem(netlist)
    clock = tight_clock_for(problem)
    problem_tight = problem.retime(clock)
    print(f"  dedicated-build critical path: "
          f"{problem.dedicated_critical_path_ps:.0f} ps")
    print(f"  tight clock period:            {clock.period_ps:.0f} ps")

    area = Scenario.area_optimized()
    tight = Scenario.performance_optimized(clock.period_ps)

    table = AsciiTable(["method / scenario", "#reused scan FFs",
                        "#additional cells", "timing violation"],
                       title="\nWrapper-cell minimization (paper Table III"
                             " row, this die)")
    for label, config, prob in (
            ("Agrawal [4] / area", WcmConfig.agrawal(area), problem),
            ("ours / area", WcmConfig.ours(area), problem),
            ("Agrawal [4] / tight", WcmConfig.agrawal(tight), problem_tight),
            ("ours / tight", WcmConfig.ours(tight), problem_tight)):
        run = run_wcm_flow(prob, config)
        table.add_row([label, run.reused_scan_ffs,
                       run.additional_wrapper_cells,
                       "X" if run.timing_violation else "-"])
    print(table.render())
    print("\nEvery TSV is wrapped in every plan; the dedicated-cell")
    print(f"baseline [13] would need {netlist.tsv_count} additional cells.")


if __name__ == "__main__":
    main()
