#!/usr/bin/env python3
"""Pre-bond vs post-bond: closing the known-good-die coverage gap.

Pre-bond, every TSV is either dark (unwrapped) or reached through its
wrapper; the TSV wires themselves are untestable until bonding. This
example builds a full b11 stack, measures per-die pre-bond coverage on
the wrapped dies, then bonds the stack (registered crossings) and
measures post-bond coverage of the assembled netlist — the measurement
behind "pre-bond testing provides known good dies, post-bond testing
checks the assembly".

Run:  python examples/postbond_flow.py
"""

from repro.atpg import AtpgConfig, run_stuck_at_atpg
from repro.bench import generate_stack
from repro.core import Scenario, WcmConfig, build_problem, run_wcm_flow
from repro.dft import build_prebond_test_view
from repro.dft.postbond import build_postbond_test_view
from repro.util.tables import AsciiTable, format_percent


def main() -> None:
    stack = generate_stack("b11", seed=2019)
    atpg = AtpgConfig(seed=2019, block_width=128, max_random_blocks=8,
                      podem_fault_limit=300)
    scenario = Scenario.area_optimized()

    table = AsciiTable(["die", "#TSVs", "wrapper plan",
                        "pre-bond coverage"],
                       title="Per-die pre-bond testing (ours)")
    wrapped_dies = []
    for index, die in enumerate(stack.dies):
        problem = build_problem(die)
        run = run_wcm_flow(problem, WcmConfig.ours(scenario))
        wrapped_dies.append(run.wrapped_netlist)
        result = run_stuck_at_atpg(
            build_prebond_test_view(run.wrapped_netlist), atpg)
        table.add_row([
            f"die{index}", die.tsv_count,
            f"{run.reused_scan_ffs} reused + "
            f"{run.additional_wrapper_cells} cells",
            format_percent(result.coverage),
        ])
    print(table.render())

    print("\nBonding the stack (registered crossings) ...")
    view = build_postbond_test_view(stack, wrapped_dies)
    merged = view.netlist
    print(f"  assembled netlist: {merged.gate_count} gates, "
          f"{len(merged.flip_flops())} FFs "
          f"(incl. bond registers), {len(view.x_nets)} endpoints "
          f"still external")
    result = run_stuck_at_atpg(view, AtpgConfig(
        seed=2019, block_width=192, max_random_blocks=14,
        podem_fault_limit=2500, fault_sample=6000))
    print(f"  post-bond stack coverage: "
          f"{format_percent(result.coverage)} "
          f"({result.detected}/{result.total_faults} sampled faults)")
    print("\nThe bonded TSV paths — dark pre-bond — are now inside the")
    print("fault universe and covered through the bond registers.")
    print("(Post-bond runs in functional mode, so wrapper isolation is")
    print("off and propagation is genuinely harder — the residue is")
    print("random-resistant faults under this example's small budget.)")


if __name__ == "__main__":
    main()
