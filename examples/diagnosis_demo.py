#!/usr/bin/env python3
"""Fault diagnosis demo: from a failing pre-bond test to a suspect.

Pipeline: wrap a die (ours, area scenario), generate its production
pattern set with the ATPG, then play manufacturing: inject a random
stuck-at defect, collect the tester syndrome (which patterns failed at
which scan cells), and ask the diagnoser for ranked suspects.

Run:  python examples/diagnosis_demo.py
"""

from repro.atpg import AtpgConfig, FaultDiagnoser
from repro.atpg.engine import AtpgEngine
from repro.bench import die_profile, generate_die
from repro.core import Scenario, WcmConfig, build_problem, run_wcm_flow
from repro.dft import build_prebond_test_view
from repro.util.rng import DeterministicRng


def main() -> None:
    netlist = generate_die(die_profile("b11", 1), seed=2019)
    problem = build_problem(netlist)
    run = run_wcm_flow(problem, WcmConfig.ours(Scenario.area_optimized()))
    view = build_prebond_test_view(run.wrapped_netlist)

    print("Generating the production pattern set...")
    engine = AtpgEngine(view, AtpgConfig(seed=2019, block_width=128,
                                         max_random_blocks=8,
                                         podem_fault_limit=400))
    result = engine.run()
    print(f"  {result.pattern_count} patterns, "
          f"{100 * result.coverage:.2f}% coverage")

    diagnoser = FaultDiagnoser(view, result.patterns,
                               fault_list=engine.fault_list)
    rng = DeterministicRng(7)

    for trial in range(3):
        # Manufacture a defective die: one hidden stuck-at fault.
        while True:
            secret = rng.randint(0, len(diagnoser.faults) - 1)
            syndrome = diagnoser.simulate_defect(secret)
            if syndrome:
                break
        print(f"\nDefective die #{trial + 1}: tester logs "
              f"{len(syndrome)} failing (pattern, scan-cell) pairs")
        diagnosis = diagnoser.diagnose(syndrome, top=3)
        for rank, candidate in enumerate(diagnosis.candidates, 1):
            marker = " <= injected" \
                if candidate.fault.describe() \
                == diagnoser.faults[secret].describe() else ""
            print(f"  #{rank} score {candidate.score:.3f}  "
                  f"{candidate.fault.describe()}{marker}")
        assert diagnosis.best is not None and diagnosis.best.score == 1.0


if __name__ == "__main__":
    main()
