#!/usr/bin/env python3
"""Sweep the testability thresholds cov_th / p_th (paper Section IV-B).

The paper's method trades area against testability: loosening the
allowed per-sharing coverage drop (cov_th) and pattern increase (p_th)
admits more overlapped-cone FF reuse — more sharing-graph edges, fewer
additional wrapper cells — at a measurable fault-coverage cost. This
example quantifies that trade on one die with the real ATPG.

Run:  python examples/testability_tradeoff.py
"""

from dataclasses import replace

from repro.atpg import AtpgConfig
from repro.bench import die_profile, generate_die
from repro.core import Scenario, WcmConfig, build_problem, run_wcm_flow
from repro.core.flow import measure_testability
from repro.core.problem import tight_clock_for
from repro.util.tables import AsciiTable, format_percent


def main() -> None:
    netlist = generate_die(die_profile("b12", 1), seed=2019)
    problem = build_problem(netlist)
    clock = tight_clock_for(problem)
    problem_t = problem.retime(clock)
    scenario = Scenario.performance_optimized(clock.period_ps)
    atpg = AtpgConfig(seed=2019, block_width=128, max_random_blocks=10,
                      podem_fault_limit=600)

    table = AsciiTable(
        ["cov_th", "p_th", "graph edges", "#reused", "#additional",
         "stuck-at coverage", "#patterns"],
        title="Testability-threshold sweep (ours, tight timing)",
    )
    settings = [
        (0.0, 0, "no overlap at all"),
        (0.002, 4, None),
        (0.005, 10, "paper's setting"),
        (0.02, 40, None),
    ]
    for cov_th, p_th, note in settings:
        base = WcmConfig.ours(scenario)
        if cov_th == 0.0:
            config = base.without_overlap()
        else:
            config = replace(base, cov_th=cov_th, p_th=p_th)
        run = run_wcm_flow(problem_t, config)
        report = measure_testability(run, atpg, include_transition=False)
        label = f"{cov_th:.3f}" + (f" ({note})" if note else "")
        table.add_row([
            label, p_th, run.total_graph_edges, run.reused_scan_ffs,
            run.additional_wrapper_cells,
            format_percent(report.stuck_at.coverage),
            report.stuck_at.pattern_count,
        ])
    print(table.render())


if __name__ == "__main__":
    main()
